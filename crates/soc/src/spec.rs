//! Hardware specifications for the simulated Jetson AGX Orin platform.
//!
//! Numbers follow Table I of the paper and NVIDIA's published Orin
//! datasheet: 2048 CUDA cores (5.3 FP32 TFLOPs), 64 tensor cores (275
//! sparse INT8 TOPS → 137.5 dense INT8 / 68.75 dense FP16), 64 GB of
//! LPDDR5 at 204.8 GB/s, 4 MB GPU L2, 192 KB L1 per SM across 16 SMs, a
//! configurable 15–60 W power envelope, and a 12-core Cortex-A78AE CPU.

use serde::{Deserialize, Serialize};

/// The Orin power modes described in §IV-B of the paper. All headline
/// experiments run in `MaxN`; the other modes cap clock frequencies and are
/// exposed for the power-mode ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PowerMode {
    /// 15 W envelope.
    W15,
    /// 30 W envelope.
    W30,
    /// 50 W envelope.
    W50,
    /// Unconstrained (MAXN), up to ~60 W.
    #[default]
    MaxN,
}

impl PowerMode {
    /// All modes, in increasing power order.
    pub const ALL: [PowerMode; 4] = [
        PowerMode::W15,
        PowerMode::W30,
        PowerMode::W50,
        PowerMode::MaxN,
    ];

    /// Relative GPU/memory clock scaling versus MAXN. Derived from the
    /// published per-mode GPU frequencies of the AGX Orin 64 GB (306 MHz –
    /// 1.3 GHz GPU clock range, with memory clocks stepping similarly).
    pub fn freq_scale(self) -> f64 {
        match self {
            PowerMode::W15 => 0.32,
            PowerMode::W30 => 0.61,
            PowerMode::W50 => 0.84,
            PowerMode::MaxN => 1.0,
        }
    }

    /// Module-level power cap in watts.
    pub fn power_cap_w(self) -> f64 {
        match self {
            PowerMode::W15 => 15.0,
            PowerMode::W30 => 30.0,
            PowerMode::W50 => 50.0,
            PowerMode::MaxN => 60.0,
        }
    }
}

impl std::fmt::Display for PowerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowerMode::W15 => write!(f, "15W"),
            PowerMode::W30 => write!(f, "30W"),
            PowerMode::W50 => write!(f, "50W"),
            PowerMode::MaxN => write!(f, "MAXN"),
        }
    }
}

/// Tensor-core tile granularity. CUTLASS GEMM kernels on Ampere process the
/// M dimension in 128-row macro-tiles and the N/K dimensions in multiples of
/// the MMA shape; workloads are padded up to these multiples, which produces
/// the stepped prefill-latency pattern of the paper's Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileQuant {
    /// M-dimension macro-tile (token dimension in prefill): 128.
    pub m: usize,
    /// N-dimension tile multiple: 64.
    pub n: usize,
    /// K-dimension tile multiple: 32.
    pub k: usize,
}

impl Default for TileQuant {
    fn default() -> Self {
        Self {
            m: 128,
            n: 64,
            k: 32,
        }
    }
}

/// Static description of the simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Total CUDA cores.
    pub cuda_cores: usize,
    /// Peak FP32 throughput on CUDA cores, FLOP/s.
    pub fp32_flops: f64,
    /// Peak dense FP16 tensor-core throughput, FLOP/s.
    pub tensor_fp16_flops: f64,
    /// Peak dense INT8 tensor-core throughput, OP/s.
    pub tensor_int8_ops: f64,
    /// DRAM bandwidth in bytes/s (shared LPDDR5).
    pub dram_bw: f64,
    /// DRAM capacity in bytes.
    pub dram_capacity: u64,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
    /// L1 cache size per SM in bytes.
    pub l1_bytes_per_sm: u64,
    /// Tensor-core tile quantization.
    pub tile: TileQuant,
    /// Fixed kernel launch + runtime overhead per kernel, seconds.
    pub launch_overhead_s: f64,
    /// Idle (rail) power attributable to the GPU + DRAM subsystem, watts.
    pub idle_power_w: f64,
    /// Maximum dynamic power above idle at full utilization, watts.
    pub max_dynamic_power_w: f64,
}

impl GpuSpec {
    /// FLOPs-to-bytes ratio of the device for FP16 tensor math — the paper's
    /// §VI quotes ≈1375 for Orin; with 68.75 TFLOPs over 204.8 GB/s the
    /// arithmetic gives ≈336 FLOP/B for dense math (the paper's figure
    /// counts sparse INT8 ops). Exposed for roofline diagnostics.
    pub fn flops_per_byte_fp16(&self) -> f64 {
        self.tensor_fp16_flops / self.dram_bw
    }
}

/// Static description of the simulated CPU complex (Cortex-A78AE).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Human-readable name.
    pub name: String,
    /// Core count (12 on AGX Orin 64 GB).
    pub cores: usize,
    /// Sustained clock in Hz.
    pub clock_hz: f64,
    /// Peak aggregate FP16/FP32 NEON throughput, FLOP/s.
    pub neon_flops: f64,
    /// Effective memory bandwidth available to the CPU cluster, bytes/s.
    /// Far below the 204.8 GB/s LPDDR5 peak: the A78AE cluster cannot
    /// saturate the fabric.
    pub mem_bw: f64,
    /// Idle power, watts.
    pub idle_power_w: f64,
    /// Max dynamic power, watts.
    pub max_dynamic_power_w: f64,
}

/// The full SoC: GPU + CPU + shared-memory parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrinSpec {
    /// GPU subsystem.
    pub gpu: GpuSpec,
    /// CPU subsystem.
    pub cpu: CpuSpec,
}

impl OrinSpec {
    /// The NVIDIA Jetson AGX Orin 64 GB developer kit used in the paper.
    pub fn agx_orin_64gb() -> Self {
        Self {
            gpu: GpuSpec {
                name: "Jetson AGX Orin 64GB (Ampere GPU)".to_owned(),
                sm_count: 16,
                cuda_cores: 2048,
                fp32_flops: 5.3e12,
                tensor_fp16_flops: 68.75e12,
                tensor_int8_ops: 137.5e12,
                dram_bw: 204.8e9,
                dram_capacity: 64 * (1 << 30),
                l2_bytes: 4 * (1 << 20),
                l1_bytes_per_sm: 192 * (1 << 10),
                tile: TileQuant::default(),
                launch_overhead_s: 6.0e-6,
                idle_power_w: 4.3,
                max_dynamic_power_w: 45.0,
            },
            cpu: CpuSpec {
                name: "Arm Cortex-A78AE x12".to_owned(),
                cores: 12,
                clock_hz: 2.2e9,
                // 12 cores x 2.2 GHz x 2 NEON pipes x 8 fp16 lanes ≈ 422 GFLOP/s
                // peak; sustained GEMM efficiency is folded into the executor.
                neon_flops: 422.0e9,
                mem_bw: 38.0e9,
                idle_power_w: 1.5,
                max_dynamic_power_w: 14.0,
            },
        }
    }
}

impl Default for OrinSpec {
    fn default() -> Self {
        Self::agx_orin_64gb()
    }
}

impl GpuSpec {
    /// An H100-SXM-class server GPU (the paper's artifact runs the
    /// accuracy benchmarks and the Natural-Plan evaluation on x86 servers
    /// with H100 / RTX A6000 GPUs — their Tables XIII–XV latencies are
    /// ~7× faster than the Orin's own time-between-tokens).
    pub fn h100_sxm() -> Self {
        Self {
            name: "H100 SXM (server)".to_owned(),
            sm_count: 132,
            cuda_cores: 16_896,
            fp32_flops: 67.0e12,
            tensor_fp16_flops: 989.0e12,
            tensor_int8_ops: 1978.0e12,
            dram_bw: 3.35e12,
            dram_capacity: 80 * (1 << 30),
            l2_bytes: 50 * (1 << 20),
            l1_bytes_per_sm: 256 * (1 << 10),
            tile: TileQuant::default(),
            launch_overhead_s: 3.0e-6,
            idle_power_w: 75.0,
            max_dynamic_power_w: 625.0,
        }
    }
}

/// Rounds `x` up to the next multiple of `quantum` (identity when already
/// aligned). Used for tensor-core tile padding: `I_pad = ceil(I/128)*128`.
///
/// # Panics
///
/// Panics if `quantum == 0`.
pub fn pad_to(x: usize, quantum: usize) -> usize {
    assert!(quantum > 0, "quantum must be positive");
    x.div_ceil(quantum) * quantum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orin_matches_table_i() {
        let soc = OrinSpec::agx_orin_64gb();
        assert_eq!(soc.gpu.cuda_cores, 2048);
        assert_eq!(soc.gpu.sm_count, 16);
        assert!((soc.gpu.fp32_flops - 5.3e12).abs() < 1e9);
        assert!((soc.gpu.dram_bw - 204.8e9).abs() < 1e6);
        assert_eq!(soc.gpu.dram_capacity, 64 * (1 << 30));
        assert_eq!(soc.cpu.cores, 12);
    }

    #[test]
    fn power_modes_monotonic() {
        let mut prev_scale = 0.0;
        let mut prev_cap = 0.0;
        for mode in PowerMode::ALL {
            assert!(mode.freq_scale() > prev_scale);
            assert!(mode.power_cap_w() > prev_cap);
            prev_scale = mode.freq_scale();
            prev_cap = mode.power_cap_w();
        }
        assert_eq!(PowerMode::MaxN.freq_scale(), 1.0);
    }

    #[test]
    fn pad_to_works() {
        assert_eq!(pad_to(1, 128), 128);
        assert_eq!(pad_to(128, 128), 128);
        assert_eq!(pad_to(129, 128), 256);
        assert_eq!(pad_to(300, 128), 384);
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn pad_to_zero_quantum_panics() {
        pad_to(5, 0);
    }

    #[test]
    fn display_power_modes() {
        assert_eq!(PowerMode::MaxN.to_string(), "MAXN");
        assert_eq!(PowerMode::W15.to_string(), "15W");
    }

    #[test]
    fn spec_debug_is_nonempty() {
        let spec = OrinSpec::default();
        let s = format!("{spec:?}");
        assert!(s.contains("Orin"));
    }
}
