//! Summary statistics used throughout the characterization harness.
//!
//! The paper reports means, mean absolute percentage error (MAPE, Tables VI
//! and VIII), and fitted-model goodness; this module provides those plus the
//! small helpers (percentiles, linspace-style sweeps) the benches need.

pub mod sketch;

/// Arithmetic mean; returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance; returns `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation; returns `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Mean absolute percentage error between predictions and ground truth,
/// as used for the paper's latency-model validation (Table VI).
///
/// Pairs whose actual value is zero are skipped (a percentage error is
/// undefined there). Returns `None` if no valid pair remains.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mape(predicted: &[f64], actual: &[f64]) -> Option<f64> {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&p, &a) in predicted.iter().zip(actual) {
        if a != 0.0 {
            sum += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(100.0 * sum / n as f64)
    }
}

/// Root-mean-square error between two equally long series.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "rmse of empty series");
    let s: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).powi(2))
        .sum();
    (s / predicted.len() as f64).sqrt()
}

/// Coefficient of determination R² of predictions against actuals.
///
/// Returns `None` when the actuals have zero variance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> Option<f64> {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let m = mean(actual)?;
    let ss_tot: f64 = actual.iter().map(|a| (a - m).powi(2)).sum();
    if ss_tot == 0.0 {
        return None;
    }
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (a - p).powi(2))
        .sum();
    Some(1.0 - ss_res / ss_tot)
}

/// Linear interpolation percentile (`q` in `[0, 100]`); `None` when empty.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Like [`percentile`], but over a slice the caller has *already* sorted
/// (ascending, `total_cmp` order). Report finalization reads p50/p95/p99
/// from one sorted buffer instead of re-cloning and re-sorting per call;
/// the interpolation is identical, so results are bit-for-bit the same as
/// `percentile` on the unsorted data.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    if sorted.is_empty() {
        return None;
    }
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// `n` evenly spaced points from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

/// `n` logarithmically spaced points from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics if `n < 2` or either bound is non-positive.
pub fn logspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > 0.0, "logspace needs positive bounds");
    linspace(lo.ln(), hi.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

/// Standard normal cumulative distribution function, via the Abramowitz &
/// Stegun 7.1.26 erf approximation (|error| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(z))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// A one-pass summary of a sample (count, mean, std, min, max).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub std_dev: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice of samples.
    pub fn of(xs: &[f64]) -> Self {
        // `mean`/`std_dev` return None only for the empty slice.
        let (Some(mean), Some(std_dev)) = (mean(xs), std_dev(xs)) else {
            return Self::default();
        };
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            count: xs.len(),
            mean,
            std_dev,
            min,
            max,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert_eq!(variance(&xs), Some(1.25));
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn mape_basic() {
        let actual = [100.0, 200.0];
        let pred = [110.0, 180.0];
        let m = mape(&pred, &actual).unwrap();
        assert!((m - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let m = mape(&[1.0, 5.0], &[0.0, 5.0]).unwrap();
        assert_eq!(m, 0.0);
        assert!(mape(&[1.0], &[0.0]).is_none());
    }

    #[test]
    fn r_squared_perfect_fit() {
        let a = [1.0, 2.0, 3.0];
        assert!((r_squared(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        assert!(r_squared(&[1.0, 1.0], &[2.0, 2.0]).is_none());
    }

    #[test]
    fn rmse_known_value() {
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert!(percentile(&[], 50.0).is_none());
    }

    #[test]
    fn percentile_sorted_matches_percentile_bitwise() {
        let xs: [f64; 7] = [4.0, 1.0, 3.0, 2.0, 8.5, 0.25, 7.125];
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for q in [0.0, 12.5, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(
                percentile_sorted(&sorted, q).map(f64::to_bits),
                percentile(&xs, q).map(f64::to_bits),
            );
        }
        assert!(percentile_sorted(&[], 50.0).is_none());
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(0.0, 10.0, 5);
        assert_eq!(v, vec![0.0, 2.5, 5.0, 7.5, 10.0]);
    }

    #[test]
    fn logspace_is_geometric() {
        let v = logspace(1.0, 100.0, 3);
        assert!((v[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn erf_is_odd() {
        assert!((erf(0.5) + erf(-0.5)).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[2.0, 4.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(Summary::of(&[]).count, 0);
    }
}
