//! Seeded fault injection: deterministic platform disturbances.
//!
//! Edge deployments do not run in the paper's happy path: the Orin throttles
//! its clocks when the chassis heats up, CPU co-runners steal LPDDR5
//! bandwidth (the DRAM bus is shared, §IV-B), operators drop the board into
//! a lower power mode mid-mission, and the GPU occasionally stalls for
//! hundreds of milliseconds on driver/runtime hiccups. This module models
//! those disturbances as a *schedule*: a list of [`Disturbance`] windows on
//! the simulated wall clock, generated from a seed so every run of a study
//! sees the same weather.
//!
//! The schedule is applied by the engine as a [`Derate`] on the simulated
//! [`Gpu`](crate::gpu::Gpu): active windows scale the effective clock
//! (compute *and* memory move together, like real DVFS), scale DRAM
//! bandwidth alone (contention), or cap power (a power-mode drop quantized
//! to the discrete [`PowerMode`] states the
//! [`PowerGovernor`](crate::power::PowerGovernor) exposes). Kernel stalls
//! inject idle-power gaps. An empty schedule produces the identity derate,
//! which is an exact no-op on the roofline arithmetic — so fault-free runs
//! are bit-identical to a build without this module.
//!
//! # Composing with endogenous governance
//!
//! Scripted disturbances are *exogenous* weather. The closed-loop
//! [`ThermalGovernor`](crate::thermal::ThermalGovernor) produces
//! *endogenous* throttling from the workload's own power draw; when both
//! are active the engine combines them with
//! [`Derate::combine`](crate::gpu::Derate::combine) — the same
//! per-axis worst-wins minimum this module uses for overlapping windows.
//! Because every fault derate component is at most its identity value
//! (`freq`/`bw` ≤ 1, `cap_w` ≤ +∞), combining with a level-0 governor's
//! exact [`Derate::IDENTITY`] reproduces the scripted derate bit for bit:
//! adding an inert governor never perturbs a faulted run, and an empty
//! schedule plus governance-off never touches the GPU at all (the engine
//! early-returns before computing any derate, preserving this module's
//! original bit-exactness guarantee verbatim).

use serde::{Deserialize, Serialize};

use crate::gpu::Derate;
use crate::rng::Rng;
use crate::spec::PowerMode;

/// What a disturbance window does to the platform while it is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Thermal throttling: clocks capped to `freq_scale` of the current
    /// mode's frequency (compute and memory scale together).
    ThermalThrottle {
        /// Relative clock scale in `(0, 1]`.
        freq_scale: f64,
    },
    /// CPU co-runners contending for the shared LPDDR5 bus: the GPU sees
    /// only `bw_scale` of its usual DRAM bandwidth.
    BandwidthContention {
        /// Relative bandwidth scale in `(0, 1]`.
        bw_scale: f64,
    },
    /// The board is dropped into a lower power mode: clocks and the power
    /// cap both follow the override mode.
    PowerModeDrop {
        /// The mode forced while the window is active.
        mode: PowerMode,
    },
    /// A rare kernel/driver stall: the GPU sits idle for the window's
    /// duration (charged at idle power when the run crosses the window).
    KernelStall,
    /// The whole device crashes and reboots: the window is the outage
    /// (MTTR). A crash is *not* a derate — the fleet layer
    /// (`engine::cluster`) interprets it as "KV cache zeroed, all in-flight
    /// sequences voided, restart pays a cold-start penalty". On the
    /// single-device derate path it is a no-op, so schedules without
    /// crashes — and single-device runs that ignore them — stay bit-exact.
    DeviceCrash,
}

/// One disturbance window on the simulated wall clock.
///
/// Windows are scripted ahead of time (exogenous weather), unlike the
/// temperature- and charge-driven windows the
/// [`ThermalGovernor`](crate::thermal::ThermalGovernor) emits at run time;
/// the two compose by per-axis minimum (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Disturbance {
    /// Window start, seconds on the simulation clock.
    pub start_s: f64,
    /// Window duration, seconds (for [`FaultKind::KernelStall`] this is the
    /// stall length itself).
    pub duration_s: f64,
    /// What the window does.
    pub kind: FaultKind,
}

impl Disturbance {
    /// Window end, seconds.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }

    /// Whether the window covers instant `t`.
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.start_s && t < self.end_s()
    }

    fn class_rank(&self) -> u8 {
        match self.kind {
            FaultKind::ThermalThrottle { .. } => 0,
            FaultKind::BandwidthContention { .. } => 1,
            FaultKind::PowerModeDrop { .. } => 2,
            FaultKind::KernelStall => 3,
            FaultKind::DeviceCrash => 4,
        }
    }
}

/// Expected disturbance counts per 100 s of horizon at intensity 1.0.
const THERMAL_PER_100S: f64 = 1.2;
const CONTENTION_PER_100S: f64 = 1.8;
const MODE_DROP_PER_100S: f64 = 0.5;
const STALL_PER_100S: f64 = 0.4;

/// A deterministic schedule of platform disturbances.
///
/// Schedules are plain data: generate one with [`FaultSchedule::generate`],
/// build one by hand with [`FaultSchedule::from_events`], or use
/// [`FaultSchedule::none`] for the guaranteed-no-op empty schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<Disturbance>,
}

impl FaultSchedule {
    /// The empty schedule: bit-identical behaviour to no fault layer at all.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a schedule from explicit windows (sorted deterministically).
    #[must_use]
    pub fn from_events(mut events: Vec<Disturbance>) -> Self {
        events.sort_by(|a, b| {
            a.start_s
                .total_cmp(&b.start_s)
                .then(a.class_rank().cmp(&b.class_rank()))
                .then(a.duration_s.total_cmp(&b.duration_s))
        });
        Self { events }
    }

    /// Generates a seeded random schedule over `[0, horizon_s]`.
    ///
    /// `intensity` scales the expected number of disturbances of every
    /// class (`0.0` yields the empty schedule; `1.0` is the calibrated
    /// "bad afternoon" rate; larger values model hostile environments).
    /// The draw order is fixed, so equal `(seed, intensity, horizon_s)`
    /// always produce the identical schedule.
    #[must_use]
    pub fn generate(seed: u64, intensity: f64, horizon_s: f64) -> Self {
        if intensity <= 0.0 || horizon_s <= 0.0 {
            return Self::none();
        }
        let mut rng = Rng::seed_from_u64(seed ^ 0xfa17_5eed);
        let scale = intensity * horizon_s / 100.0;
        let mut events = Vec::new();

        for _ in 0..poisson(&mut rng, THERMAL_PER_100S * scale) {
            events.push(Disturbance {
                start_s: rng.range_f64(0.0, horizon_s),
                duration_s: rng.lognormal_mean_std(15.0, 8.0),
                kind: FaultKind::ThermalThrottle {
                    freq_scale: rng.range_f64(0.55, 0.85),
                },
            });
        }
        for _ in 0..poisson(&mut rng, CONTENTION_PER_100S * scale) {
            events.push(Disturbance {
                start_s: rng.range_f64(0.0, horizon_s),
                duration_s: rng.lognormal_mean_std(8.0, 5.0),
                kind: FaultKind::BandwidthContention {
                    bw_scale: rng.range_f64(0.45, 0.80),
                },
            });
        }
        for _ in 0..poisson(&mut rng, MODE_DROP_PER_100S * scale) {
            let mode = if rng.chance(0.5) {
                PowerMode::W30
            } else {
                PowerMode::W50
            };
            events.push(Disturbance {
                start_s: rng.range_f64(0.0, horizon_s),
                duration_s: rng.lognormal_mean_std(25.0, 10.0),
                kind: FaultKind::PowerModeDrop { mode },
            });
        }
        for _ in 0..poisson(&mut rng, STALL_PER_100S * scale) {
            events.push(Disturbance {
                start_s: rng.range_f64(0.0, horizon_s),
                duration_s: rng.lognormal_mean_std(1.2, 0.8),
                kind: FaultKind::KernelStall,
            });
        }
        Self::from_events(events)
    }

    /// Generates a seeded schedule of [`FaultKind::DeviceCrash`] outages
    /// over `[0, horizon_s]`: exponential inter-crash gaps with mean
    /// `mtbf_s`, lognormal repair windows with mean `mttr_s`. Crashes use
    /// their own RNG lane (distinct from [`FaultSchedule::generate`]), so
    /// adding crash weather never perturbs the derate weather of an equal
    /// seed. Non-positive `mtbf_s` or `horizon_s` yields the empty
    /// schedule.
    #[must_use]
    pub fn generate_crashes(seed: u64, mtbf_s: f64, mttr_s: f64, horizon_s: f64) -> Self {
        if mtbf_s <= 0.0 || !mtbf_s.is_finite() || horizon_s <= 0.0 {
            return Self::none();
        }
        let mut rng = Rng::seed_from_u64(seed ^ 0x00c7_a5b0);
        let mttr = mttr_s.max(0.1);
        let mut events = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Exponential gap; next_f64 is in [0, 1), so ln(1 - u) is finite.
            t += -(1.0 - rng.next_f64()).ln() * mtbf_s;
            if t >= horizon_s {
                break;
            }
            let outage = rng.lognormal_mean_std(mttr, 0.5 * mttr);
            events.push(Disturbance {
                start_s: t,
                duration_s: outage,
                kind: FaultKind::DeviceCrash,
            });
            t += outage;
        }
        Self::from_events(events)
    }

    /// The `(start_s, end_s)` outage windows of every
    /// [`FaultKind::DeviceCrash`] event, in start order.
    #[must_use]
    pub fn crash_windows(&self) -> Vec<(f64, f64)> {
        self.events
            .iter()
            .filter(|ev| matches!(ev.kind, FaultKind::DeviceCrash))
            .map(|ev| (ev.start_s, ev.end_s()))
            .collect()
    }

    /// Whether the schedule has no windows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The windows, sorted by start time.
    #[must_use]
    pub fn events(&self) -> &[Disturbance] {
        &self.events
    }

    /// The combined [`Derate`] of every window active at instant `t`, for a
    /// GPU currently in `mode`. Overlapping windows compose by taking the
    /// most pessimistic value on each axis. Returns [`Derate::IDENTITY`]
    /// when nothing is active (in particular, always, for an empty
    /// schedule).
    #[must_use]
    pub fn derate_at(&self, t: f64, mode: PowerMode) -> Derate {
        let mut d = Derate::IDENTITY;
        for ev in &self.events {
            if ev.start_s > t {
                break; // sorted by start: nothing later can be active
            }
            if !ev.active_at(t) {
                continue;
            }
            match ev.kind {
                FaultKind::ThermalThrottle { freq_scale } => {
                    d.freq = d.freq.min(freq_scale);
                }
                FaultKind::BandwidthContention { bw_scale } => {
                    d.bw = d.bw.min(bw_scale);
                }
                FaultKind::PowerModeDrop { mode: forced } => {
                    d.freq = d.freq.min(forced.freq_scale() / mode.freq_scale());
                    d.cap_w = d.cap_w.min(forced.power_cap_w());
                }
                // Crashes and stalls are not derates: the engine charges
                // stall windows as idle gaps, and the fleet layer handles
                // crash windows (void + restart) above the device.
                FaultKind::KernelStall | FaultKind::DeviceCrash => {}
            }
        }
        d.freq = d.freq.min(1.0);
        d
    }

    /// Merges two schedules into one: the union of their windows, re-sorted
    /// deterministically. Because [`FaultSchedule::derate_at`] composes
    /// overlapping windows by per-axis minimum, merging is order-invariant
    /// and min-combines naturally; merging with an empty schedule returns a
    /// schedule equal to `self` (same windows, same sort).
    #[must_use]
    pub fn merge(&self, other: &FaultSchedule) -> FaultSchedule {
        if other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        let mut events = self.events.clone();
        events.extend_from_slice(&other.events);
        Self::from_events(events)
    }

    /// Kernel-stall windows starting inside `[t0, t1)`: returns their count
    /// and the total stall seconds they inject.
    #[must_use]
    pub fn stalls_in(&self, t0: f64, t1: f64) -> (usize, f64) {
        let mut count = 0usize;
        let mut seconds = 0.0f64;
        for ev in &self.events {
            if ev.start_s >= t1 {
                break;
            }
            if ev.start_s >= t0 && matches!(ev.kind, FaultKind::KernelStall) {
                count += 1;
                seconds += ev.duration_s;
            }
        }
        (count, seconds)
    }
}

/// Pre-combined derate components of one timeline segment (everything
/// except the power-mode-relative division, which depends on the query-time
/// [`PowerMode`]).
#[derive(Debug, Clone, Copy)]
struct SegmentDerate {
    /// Min `freq_scale` over active thermal windows (`+inf` when none).
    thermal_freq: f64,
    /// Min `bw_scale` over active contention windows (`+inf` when none).
    bw: f64,
    /// Min `forced.freq_scale()` over active mode drops (`+inf` when none).
    drop_freq: f64,
    /// Min `forced.power_cap_w()` over active mode drops (`+inf` when none).
    cap_w: f64,
}

impl SegmentDerate {
    const EMPTY: SegmentDerate = SegmentDerate {
        thermal_freq: f64::INFINITY,
        bw: f64::INFINITY,
        drop_freq: f64::INFINITY,
        cap_w: f64::INFINITY,
    };
}

/// A query-time index over a [`FaultSchedule`]: O(log n) [`derate_at`] and
/// [`stalls_in`] lookups that are bit-identical to the schedule's linear
/// scans.
///
/// [`FaultSchedule::derate_at`] walks every window whose start precedes the
/// query instant, which makes a dense schedule (intensity 1.0 over a
/// 20 000 s horizon is ~800 windows) cost O(past windows) *per phase
/// boundary*. The index precomputes the piecewise-constant active-window
/// composition once: boundaries are the sorted starts/ends of every
/// derate-relevant window, and each segment stores the per-axis minima of
/// the windows covering it. Queries binary-search the segment and finish
/// the composition with pure float math.
///
/// Bit-exactness relies on two IEEE facts: `f64::min` over a NaN-free set
/// is order-invariant, and division by a positive constant is weakly
/// monotone, so `min_i(fᵢ/m) == (min_i fᵢ)/m` bit-for-bit — which lets the
/// power-mode-relative division of [`FaultKind::PowerModeDrop`] be factored
/// out of the precomputed minima. An index over the empty schedule returns
/// the exact [`Derate::IDENTITY`], preserving the no-op guarantee.
///
/// [`derate_at`]: FaultIndex::derate_at
/// [`stalls_in`]: FaultIndex::stalls_in
#[derive(Debug, Clone, Default)]
pub struct FaultIndex {
    /// Segment boundaries: sorted, deduplicated starts/ends of every
    /// derate-relevant window. Segment `k` covers
    /// `[boundaries[k], boundaries[k+1])` (the last extends to `+inf`);
    /// instants before `boundaries[0]` see the identity derate.
    boundaries: Vec<f64>,
    /// Per-segment composition, `segments.len() == boundaries.len()`.
    segments: Vec<SegmentDerate>,
    /// `(start_s, duration_s)` of every [`FaultKind::KernelStall`] window,
    /// in schedule order (sorted by start).
    stalls: Vec<(f64, f64)>,
}

impl FaultIndex {
    /// Builds the index for `schedule`. O(n log n) in the window count.
    #[must_use]
    pub fn new(schedule: &FaultSchedule) -> Self {
        let stalls: Vec<(f64, f64)> = schedule
            .events()
            .iter()
            .filter(|ev| matches!(ev.kind, FaultKind::KernelStall))
            .map(|ev| (ev.start_s, ev.duration_s))
            .collect();
        // Only these three kinds contribute to the derate composition.
        let derates: Vec<&Disturbance> = schedule
            .events()
            .iter()
            .filter(|ev| {
                matches!(
                    ev.kind,
                    FaultKind::ThermalThrottle { .. }
                        | FaultKind::BandwidthContention { .. }
                        | FaultKind::PowerModeDrop { .. }
                )
            })
            .collect();
        let mut boundaries: Vec<f64> = derates
            .iter()
            .flat_map(|ev| [ev.start_s, ev.end_s()])
            .collect();
        boundaries.sort_by(f64::total_cmp);
        boundaries.dedup_by(|a, b| a == b);
        // Sweep: windows are half-open `[start, end)` and every start/end is
        // a boundary, so the active set is constant within each segment.
        let mut segments = Vec::with_capacity(boundaries.len());
        let mut active: Vec<&Disturbance> = Vec::new();
        let mut next = 0usize; // derates are sorted by start
        for &b in &boundaries {
            active.retain(|ev| ev.end_s() > b);
            while next < derates.len() && derates[next].start_s <= b {
                if derates[next].end_s() > b {
                    active.push(derates[next]);
                }
                next += 1;
            }
            let mut seg = SegmentDerate::EMPTY;
            for ev in &active {
                match ev.kind {
                    FaultKind::ThermalThrottle { freq_scale } => {
                        seg.thermal_freq = seg.thermal_freq.min(freq_scale);
                    }
                    FaultKind::BandwidthContention { bw_scale } => {
                        seg.bw = seg.bw.min(bw_scale);
                    }
                    FaultKind::PowerModeDrop { mode: forced } => {
                        seg.drop_freq = seg.drop_freq.min(forced.freq_scale());
                        seg.cap_w = seg.cap_w.min(forced.power_cap_w());
                    }
                    FaultKind::KernelStall | FaultKind::DeviceCrash => {}
                }
            }
            segments.push(seg);
        }
        Self {
            boundaries,
            segments,
            stalls,
        }
    }

    /// The combined [`Derate`] at instant `t` for a GPU in `mode` —
    /// bit-identical to [`FaultSchedule::derate_at`] on the indexed
    /// schedule.
    #[must_use]
    pub fn derate_at(&self, t: f64, mode: PowerMode) -> Derate {
        let idx = self.boundaries.partition_point(|b| *b <= t);
        if idx == 0 {
            return Derate::IDENTITY;
        }
        let seg = self.segments[idx - 1];
        // Empty axes hold +inf, which survives the positive division and
        // loses every min against the identity — no active-set branch
        // needed.
        Derate {
            freq: 1.0f64
                .min(seg.thermal_freq)
                .min(seg.drop_freq / mode.freq_scale()),
            bw: 1.0f64.min(seg.bw),
            cap_w: f64::INFINITY.min(seg.cap_w),
        }
    }

    /// Kernel-stall windows starting inside `[t0, t1)` — bit-identical to
    /// [`FaultSchedule::stalls_in`] (the summation order over in-range
    /// stalls is the schedule order, exactly as the scan visits them).
    #[must_use]
    pub fn stalls_in(&self, t0: f64, t1: f64) -> (usize, f64) {
        let lo = self.stalls.partition_point(|(s, _)| *s < t0);
        let hi = self.stalls.partition_point(|(s, _)| *s < t1);
        let mut seconds = 0.0f64;
        for &(_, d) in &self.stalls[lo..hi.max(lo)] {
            seconds += d;
        }
        (hi.saturating_sub(lo), seconds)
    }

    /// Whether the indexed schedule had no windows at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.boundaries.is_empty() && self.stalls.is_empty()
    }
}

/// What correlated infrastructure the members of a failure domain share.
///
/// The kind decides what a *domain event* does to every member at once:
/// power domains brown the whole group out (a forced low power mode),
/// thermal domains throttle every board in the enclosure, and network
/// domains partition the members from the router (they look Up but are
/// unreachable — the fleet layer detects the partition by timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainKind {
    /// Shared power rail: events force every member into a low power mode.
    Power,
    /// Shared enclosure/heatsink: events throttle every member's clocks.
    Thermal,
    /// Shared switch/uplink: events partition members from the router.
    Network,
}

/// One failure domain: a group of replicas that fails together.
///
/// Domains emit two kinds of trouble, each on its own seeded RNG lane so
/// enabling one never perturbs the other: *crashes* (every member reboots
/// together, exponential MTBF / lognormal MTTR, exactly like the
/// per-replica [`FaultSchedule::generate_crashes`] model) and *events*
/// (brown-out, throttle, or partition windows, depending on
/// [`DomainKind`]). Setting a rate to `0.0` disables that lane; a config
/// with no members or all lanes disabled produces an empty
/// [`DomainSchedule`], which the fleet layer treats as bit-identical to no
/// domain at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainConfig {
    /// What the members share.
    pub kind: DomainKind,
    /// Replica indices belonging to the domain (fleet-layer indices).
    pub members: Vec<usize>,
    /// Mean seconds between whole-domain crashes (`0.0` disables).
    pub crash_mtbf_s: f64,
    /// Mean repair seconds after a domain crash.
    pub crash_mttr_s: f64,
    /// Mean seconds between domain events (`0.0` disables).
    pub event_mtbf_s: f64,
    /// Mean duration of one domain event window, seconds.
    pub event_duration_s: f64,
}

impl DomainConfig {
    /// A quiet domain over `members`: no crashes, no events. Useful as a
    /// base for struct-update syntax.
    #[must_use]
    pub fn quiet(kind: DomainKind, members: Vec<usize>) -> Self {
        Self {
            kind,
            members,
            crash_mtbf_s: 0.0,
            crash_mttr_s: 0.0,
            event_mtbf_s: 0.0,
            event_duration_s: 0.0,
        }
    }

    /// Generates the domain's seeded schedule over `[0, horizon_s]`.
    ///
    /// `domain_index` keys the RNG lane so equal configs at different
    /// positions in a fleet draw independent weather; equal
    /// `(seed, domain_index, horizon_s)` always reproduce the identical
    /// schedule.
    #[must_use]
    pub fn generate(&self, seed: u64, domain_index: usize, horizon_s: f64) -> DomainSchedule {
        let lane = seed ^ 0x00d0_3a1d ^ (domain_index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut schedule = DomainSchedule {
            kind: self.kind,
            members: self.members.clone(),
            crashes: Vec::new(),
            derates: FaultSchedule::none(),
            partitions: Vec::new(),
        };
        if self.members.is_empty() || horizon_s <= 0.0 {
            return schedule;
        }
        schedule.crashes = windows_exp_lognormal(
            lane ^ 0x00c7_a511,
            self.crash_mtbf_s,
            self.crash_mttr_s,
            horizon_s,
        );
        let events = windows_exp_lognormal(
            lane ^ 0x00e7_e217,
            self.event_mtbf_s,
            self.event_duration_s,
            horizon_s,
        );
        match self.kind {
            DomainKind::Power => {
                // Brown-out: the rail sags and every member is forced into
                // the lowest power mode for the window.
                schedule.derates = FaultSchedule::from_events(
                    events
                        .iter()
                        .map(|&(start, end)| Disturbance {
                            start_s: start,
                            duration_s: end - start,
                            kind: FaultKind::PowerModeDrop {
                                mode: PowerMode::W15,
                            },
                        })
                        .collect(),
                );
            }
            DomainKind::Thermal => {
                // Hot enclosure: a fixed pessimistic throttle for the whole
                // group (the per-replica weather min-combines on top).
                schedule.derates = FaultSchedule::from_events(
                    events
                        .iter()
                        .map(|&(start, end)| Disturbance {
                            start_s: start,
                            duration_s: end - start,
                            kind: FaultKind::ThermalThrottle { freq_scale: 0.6 },
                        })
                        .collect(),
                );
            }
            DomainKind::Network => {
                schedule.partitions = events;
            }
        }
        schedule
    }
}

/// The realized seeded weather of one [`DomainConfig`] over a horizon.
///
/// Plain data for the fleet layer: crash outages void every member
/// together, derate windows min-combine with each member's own
/// [`FaultSchedule`] (via [`FaultSchedule::merge`]), and partition windows
/// make members unreachable from the router while staying Up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainSchedule {
    /// What the members share (copied from the config).
    pub kind: DomainKind,
    /// Replica indices the schedule applies to.
    pub members: Vec<usize>,
    /// `(start_s, end_s)` whole-domain outage windows, disjoint and sorted.
    pub crashes: Vec<(f64, f64)>,
    /// Derate windows every member sees (empty for network domains).
    pub derates: FaultSchedule,
    /// `(start_s, end_s)` router↔member partition windows, disjoint and
    /// sorted (empty for non-network domains).
    pub partitions: Vec<(f64, f64)>,
}

impl DomainSchedule {
    /// Whether the schedule carries no trouble at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.derates.is_empty() && self.partitions.is_empty()
    }

    /// Whether replica `replica` belongs to this domain.
    #[must_use]
    pub fn covers(&self, replica: usize) -> bool {
        self.members.contains(&replica)
    }
}

/// Disjoint `(start, end)` windows: exponential inter-arrival gaps with
/// mean `mtbf_s`, lognormal durations with mean `duration_s`. The repair
/// completes before the next failure can begin, mirroring
/// [`FaultSchedule::generate_crashes`]. Non-positive `mtbf_s` or
/// `horizon_s` yields no windows.
fn windows_exp_lognormal(
    seed: u64,
    mtbf_s: f64,
    duration_s: f64,
    horizon_s: f64,
) -> Vec<(f64, f64)> {
    if mtbf_s <= 0.0 || !mtbf_s.is_finite() || horizon_s <= 0.0 {
        return Vec::new();
    }
    let mut rng = Rng::seed_from_u64(seed);
    let dur = duration_s.max(0.1);
    let mut windows = Vec::new();
    let mut t = 0.0f64;
    loop {
        t += -(1.0 - rng.next_f64()).ln() * mtbf_s;
        if t >= horizon_s {
            break;
        }
        let w = rng.lognormal_mean_std(dur, 0.5 * dur);
        windows.push((t, t + w));
        t += w;
    }
    windows
}

/// Knuth's Poisson sampler (λ is small here: a handful of events per run).
fn poisson(rng: &mut Rng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.next_f64();
        if p <= limit || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_identity_everywhere() {
        let s = FaultSchedule::none();
        assert!(s.is_empty());
        for t in [0.0, 1.0, 1e6] {
            assert_eq!(s.derate_at(t, PowerMode::MaxN), Derate::IDENTITY);
        }
        assert_eq!(s.stalls_in(0.0, 1e9), (0, 0.0));
    }

    #[test]
    fn zero_intensity_generates_nothing() {
        assert!(FaultSchedule::generate(42, 0.0, 1000.0).is_empty());
        assert!(FaultSchedule::generate(42, 1.0, 0.0).is_empty());
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = FaultSchedule::generate(7, 1.5, 500.0);
        let b = FaultSchedule::generate(7, 1.5, 500.0);
        assert_eq!(a, b);
        let c = FaultSchedule::generate(8, 1.5, 500.0);
        assert_ne!(a, c, "different seeds should differ (w.h.p.)");
    }

    #[test]
    fn intensity_scales_event_count() {
        let lo = FaultSchedule::generate(3, 0.5, 2000.0).events().len();
        let hi = FaultSchedule::generate(3, 4.0, 2000.0).events().len();
        assert!(
            hi > lo,
            "4x intensity must produce more events: {lo} vs {hi}"
        );
    }

    #[test]
    fn events_are_sorted_by_start() {
        let s = FaultSchedule::generate(11, 2.0, 1000.0);
        for w in s.events().windows(2) {
            assert!(w[0].start_s <= w[1].start_s);
        }
    }

    #[test]
    fn thermal_window_derates_frequency_only_inside() {
        let s = FaultSchedule::from_events(vec![Disturbance {
            start_s: 10.0,
            duration_s: 5.0,
            kind: FaultKind::ThermalThrottle { freq_scale: 0.6 },
        }]);
        assert_eq!(s.derate_at(9.9, PowerMode::MaxN), Derate::IDENTITY);
        let d = s.derate_at(12.0, PowerMode::MaxN);
        assert_eq!(d.freq, 0.6);
        assert_eq!(d.bw, 1.0);
        assert_eq!(s.derate_at(15.0, PowerMode::MaxN), Derate::IDENTITY);
    }

    #[test]
    fn overlapping_windows_take_the_worst_of_each_axis() {
        let s = FaultSchedule::from_events(vec![
            Disturbance {
                start_s: 0.0,
                duration_s: 100.0,
                kind: FaultKind::ThermalThrottle { freq_scale: 0.8 },
            },
            Disturbance {
                start_s: 0.0,
                duration_s: 100.0,
                kind: FaultKind::ThermalThrottle { freq_scale: 0.6 },
            },
            Disturbance {
                start_s: 0.0,
                duration_s: 100.0,
                kind: FaultKind::BandwidthContention { bw_scale: 0.5 },
            },
        ]);
        let d = s.derate_at(50.0, PowerMode::MaxN);
        assert_eq!(d.freq, 0.6);
        assert_eq!(d.bw, 0.5);
    }

    #[test]
    fn power_mode_drop_scales_relative_to_current_mode() {
        let s = FaultSchedule::from_events(vec![Disturbance {
            start_s: 0.0,
            duration_s: 10.0,
            kind: FaultKind::PowerModeDrop {
                mode: PowerMode::W30,
            },
        }]);
        let d = s.derate_at(1.0, PowerMode::MaxN);
        assert!((d.freq - 0.61).abs() < 1e-12);
        assert_eq!(d.cap_w, 30.0);
        // Already below the forced mode: no speedup is ever granted.
        let d15 = s.derate_at(1.0, PowerMode::W15);
        assert_eq!(d15.freq, 1.0);
        assert_eq!(d15.cap_w, 30.0);
    }

    #[test]
    fn crash_schedule_is_deterministic_and_disjoint() {
        let a = FaultSchedule::generate_crashes(9, 120.0, 20.0, 1000.0);
        let b = FaultSchedule::generate_crashes(9, 120.0, 20.0, 1000.0);
        assert_eq!(a, b);
        let windows = a.crash_windows();
        assert_eq!(windows.len(), a.events().len(), "crash-only schedule");
        // Repair precedes the next failure: outages never overlap.
        for w in windows.windows(2) {
            assert!(w[0].1 <= w[1].0, "outages overlap: {w:?}");
        }
        assert!(FaultSchedule::generate_crashes(9, 0.0, 20.0, 1000.0).is_empty());
        assert!(FaultSchedule::generate_crashes(9, 120.0, 20.0, 0.0).is_empty());
    }

    #[test]
    fn crashes_are_invisible_to_the_derate_path() {
        let s = FaultSchedule::from_events(vec![Disturbance {
            start_s: 1.0,
            duration_s: 50.0,
            kind: FaultKind::DeviceCrash,
        }]);
        for t in [0.0, 1.0, 25.0, 51.0] {
            assert_eq!(s.derate_at(t, PowerMode::MaxN), Derate::IDENTITY);
        }
        assert_eq!(s.stalls_in(0.0, 100.0), (0, 0.0));
        assert_eq!(s.crash_windows(), vec![(1.0, 51.0)]);
    }

    #[test]
    fn crash_lane_never_perturbs_derate_weather() {
        // Same seed: the derate generator must be unaffected by the crash
        // generator existing (separate RNG lanes).
        let derates = FaultSchedule::generate(7, 1.5, 500.0);
        let _ = FaultSchedule::generate_crashes(7, 100.0, 15.0, 500.0);
        assert_eq!(derates, FaultSchedule::generate(7, 1.5, 500.0));
    }

    #[test]
    fn merge_with_empty_is_identity_and_min_combines() {
        let a = FaultSchedule::generate(5, 1.0, 400.0);
        assert_eq!(a.merge(&FaultSchedule::none()), a);
        assert_eq!(FaultSchedule::none().merge(&a), a);
        let b = FaultSchedule::from_events(vec![Disturbance {
            start_s: 0.0,
            duration_s: 1e9,
            kind: FaultKind::ThermalThrottle { freq_scale: 0.3 },
        }]);
        let merged = a.merge(&b);
        assert_eq!(merged.events().len(), a.events().len() + 1);
        // The blanket 0.3 throttle wins every min at any instant.
        assert_eq!(merged.derate_at(17.0, PowerMode::MaxN).freq, 0.3);
        // Merge order never matters: same windows, same deterministic sort.
        assert_eq!(merged, b.merge(&a));
    }

    #[test]
    fn quiet_domain_generates_empty_schedule() {
        let cfg = DomainConfig::quiet(DomainKind::Power, vec![0, 1]);
        let s = cfg.generate(42, 0, 1000.0);
        assert!(s.is_empty());
        assert!(s.covers(1));
        assert!(!s.covers(2));
        // No members: empty even with rates set.
        let cfg = DomainConfig {
            crash_mtbf_s: 100.0,
            crash_mttr_s: 10.0,
            ..DomainConfig::quiet(DomainKind::Power, vec![])
        };
        assert!(cfg.generate(42, 0, 1000.0).is_empty());
    }

    #[test]
    fn domain_generation_is_deterministic_and_lane_separated() {
        let cfg = DomainConfig {
            crash_mtbf_s: 300.0,
            crash_mttr_s: 20.0,
            event_mtbf_s: 150.0,
            event_duration_s: 30.0,
            ..DomainConfig::quiet(DomainKind::Power, vec![0, 1, 2])
        };
        let a = cfg.generate(9, 0, 2000.0);
        assert_eq!(a, cfg.generate(9, 0, 2000.0));
        assert_ne!(a, cfg.generate(9, 1, 2000.0), "domain index keys the lane");
        // Disabling events must not move the crash draws (separate lanes).
        let crashes_only = DomainConfig {
            event_mtbf_s: 0.0,
            ..cfg.clone()
        };
        assert_eq!(crashes_only.generate(9, 0, 2000.0).crashes, a.crashes);
    }

    #[test]
    fn domain_kind_routes_events_to_the_right_channel() {
        let base = DomainConfig {
            event_mtbf_s: 100.0,
            event_duration_s: 20.0,
            ..DomainConfig::quiet(DomainKind::Power, vec![0])
        };
        let power = base.generate(3, 0, 3000.0);
        assert!(!power.derates.is_empty());
        assert!(power.partitions.is_empty());
        assert!(power
            .derates
            .events()
            .iter()
            .all(|ev| matches!(ev.kind, FaultKind::PowerModeDrop { .. })));

        let thermal = DomainConfig {
            kind: DomainKind::Thermal,
            ..base.clone()
        }
        .generate(3, 0, 3000.0);
        assert!(thermal
            .derates
            .events()
            .iter()
            .all(|ev| matches!(ev.kind, FaultKind::ThermalThrottle { .. })));
        assert!(thermal.partitions.is_empty());

        let network = DomainConfig {
            kind: DomainKind::Network,
            ..base.clone()
        }
        .generate(3, 0, 3000.0);
        assert!(network.derates.is_empty());
        assert!(!network.partitions.is_empty());
        for w in network.partitions.windows(2) {
            assert!(w[0].1 <= w[1].0, "partitions overlap: {w:?}");
        }
    }

    #[test]
    fn stalls_are_counted_in_window() {
        let s = FaultSchedule::from_events(vec![
            Disturbance {
                start_s: 5.0,
                duration_s: 1.5,
                kind: FaultKind::KernelStall,
            },
            Disturbance {
                start_s: 20.0,
                duration_s: 0.5,
                kind: FaultKind::KernelStall,
            },
        ]);
        assert_eq!(s.stalls_in(0.0, 10.0), (1, 1.5));
        let (n, sec) = s.stalls_in(0.0, 30.0);
        assert_eq!(n, 2);
        assert!((sec - 2.0).abs() < 1e-12);
        assert_eq!(s.stalls_in(6.0, 10.0), (0, 0.0));
    }
}
