//! Deterministic pseudo-random number generation and sampling.
//!
//! The whole study must be reproducible run-to-run (the paper's artifact
//! fixes seeds for its workload sweeps), so we implement a small, fully
//! deterministic xoshiro256++ generator seeded through SplitMix64, plus the
//! handful of distributions the simulator needs (uniform, normal via
//! Box–Muller, lognormal). Implementing these ~100 lines ourselves keeps the
//! workspace free of the `rand`/`rand_distr` version churn and guarantees
//! bit-identical streams on every platform.

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// # Example
///
/// ```
/// use edgereasoning_soc::rng::Rng;
///
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second output of the most recent Box–Muller transform.
    gauss_cache: Option<u64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        Self {
            state,
            gauss_cache: None,
        }
    }

    /// Derives an independent child generator; used to give every simulated
    /// component (GPU jitter, workload sampling, model behaviour) its own
    /// stream so adding draws in one place never perturbs another.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64();
        Self::seed_from_u64(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `(0, 1]`: `1.0 - next_f64()`. Safe to feed to `ln`
    /// for exponential inter-arrival sampling (`-ln(u)/rate`) — the draw can
    /// never be zero, so no `max(epsilon)` clamp is needed downstream.
    /// Consumes exactly one `next_u64`, same as [`Rng::next_f64`].
    pub fn next_open01(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer draw in `[0, n)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn range_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "range_usize requires n > 0");
        let n = n as u64;
        // Rejection sampling on the top bits avoids modulo bias.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal draw via the Box–Muller transform (second value of
    /// each pair is cached, so draws come in amortized half-cost).
    pub fn normal(&mut self) -> f64 {
        if let Some(bits) = self.gauss_cache.take() {
            return f64::from_bits(bits);
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = self.next_open01();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_cache = Some(f64::to_bits(r * theta.sin()));
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev < 0`.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.normal()
    }

    /// Lognormal draw parameterized by the *underlying* normal's `mu` and
    /// `sigma` (i.e. `exp(N(mu, sigma))`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal_with(mu, sigma).exp()
    }

    /// Lognormal draw parameterized by the distribution's own mean and
    /// standard deviation (moment matching), convenient for calibrating
    /// token-length distributions to published per-config averages.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `std_dev < 0`.
    pub fn lognormal_mean_std(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(mean > 0.0, "lognormal mean must be positive");
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        let cv2 = (std_dev / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        self.lognormal(mu, sigma2.sqrt())
    }

    /// Multiplicative jitter `1 + N(0, rel)` truncated to stay positive;
    /// models run-to-run measurement noise.
    pub fn jitter(&mut self, rel: f64) -> f64 {
        (1.0 + self.normal_with(0.0, rel)).max(0.05)
    }
}

/// A deterministic 64-bit hash used to derive *stable per-shape* perturbations
/// (e.g. which "CUTLASS kernel variant" a GEMM shape selects). Unlike draws
/// from [`Rng`], the value depends only on the inputs, never on call order.
pub fn stable_hash(values: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in values {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// A minimal FxHash-style [`std::hash::Hasher`] (rotate–xor–multiply per
/// word, the rustc/Firefox workhorse) for hot in-process maps keyed by
/// small plain data. 5–10x cheaper than the collision-hardened SipHash
/// default, which matters when a map probe sits on a simulator hot path.
/// Not collision-resistant against adversarial keys — use only for
/// internal keys (sequence ids, phase keys), and never where map iteration
/// order could become observable.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

/// Maps a stable hash to a deterministic value in `[-1, 1]`.
pub fn stable_unit(values: &[u64]) -> f64 {
    let h = stable_hash(values);
    ((h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = Rng::seed_from_u64(9);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean off: {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(4);
        const N: usize = 50_000;
        let xs: Vec<f64> = (0..N).map(|_| rng.normal_with(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / N as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / N as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_mean_std_matches_moments() {
        let mut rng = Rng::seed_from_u64(11);
        const N: usize = 100_000;
        let xs: Vec<f64> = (0..N)
            .map(|_| rng.lognormal_mean_std(800.0, 400.0))
            .collect();
        let mean = xs.iter().sum::<f64>() / N as f64;
        assert!(
            (mean - 800.0).abs() / 800.0 < 0.02,
            "lognormal mean {mean} should be near 800"
        );
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn range_usize_covers_all_residues() {
        let mut rng = Rng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.range_usize(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from_u64(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn stable_hash_is_order_sensitive_and_stable() {
        assert_eq!(stable_hash(&[1, 2, 3]), stable_hash(&[1, 2, 3]));
        assert_ne!(stable_hash(&[1, 2, 3]), stable_hash(&[3, 2, 1]));
        let u = stable_unit(&[42, 7]);
        assert!((-1.0..=1.0).contains(&u));
        assert_eq!(u, stable_unit(&[42, 7]));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from_u64(77);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let a: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn jitter_stays_positive() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(rng.jitter(0.5) > 0.0);
        }
    }
}
