//! The Cortex-A78AE CPU cluster model (paper Appendix C).
//!
//! The CPU path matters for two results: Tables XVI/XVII (CPU-vs-GPU
//! prefill/decode latency, showing the CPU is 5–160× slower) and the §V-E
//! observation that CPU utilization stays ≤20 % during GPU inference,
//! motivating heterogeneous offload. Calibration follows the same
//! back-derivation as the GPU: the published CPU prefill latencies imply
//! ≈45 GFLOP/s sustained GEMM throughput (≈11 % of NEON peak across 12
//! cores) and decode implies ≈32 GB/s of effective memory bandwidth.

use serde::{Deserialize, Serialize};

use crate::kernel::KernelDesc;
use crate::power::EnergyMeter;
use crate::rng::Rng;
use crate::spec::CpuSpec;

/// Efficiency parameters of the CPU executor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuEff {
    /// Sustained fraction of NEON peak for GEMM-like loops.
    pub compute_frac: f64,
    /// Sustained fraction of the CPU cluster's memory bandwidth.
    pub bw_frac: f64,
    /// Per-kernel dispatch overhead, seconds.
    pub dispatch_overhead_s: f64,
    /// Relative run-to-run noise.
    pub measurement_noise: f64,
}

impl Default for CpuEff {
    fn default() -> Self {
        Self {
            compute_frac: 0.107,
            bw_frac: 0.85,
            dispatch_overhead_s: 2.0e-6,
            measurement_noise: 0.015,
        }
    }
}

/// Result of running one kernel on the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuExec {
    /// Wall-clock latency, seconds.
    pub latency_s: f64,
    /// Energy consumed, joules.
    pub energy_j: f64,
    /// Average power, watts.
    pub power_w: f64,
}

/// The simulated 12-core Cortex-A78AE cluster.
#[derive(Debug, Clone)]
pub struct Cpu {
    spec: CpuSpec,
    eff: CpuEff,
    rng: Rng,
}

impl Cpu {
    /// Creates a CPU model with a deterministic noise seed.
    pub fn new(spec: CpuSpec, seed: u64) -> Self {
        Self {
            spec,
            eff: CpuEff::default(),
            rng: Rng::seed_from_u64(seed ^ 0x6137_3861),
        }
    }

    /// Returns the CPU specification.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Returns the efficiency parameters.
    pub fn eff(&self) -> &CpuEff {
        &self.eff
    }

    /// Overrides the efficiency parameters.
    pub fn set_eff(&mut self, eff: CpuEff) {
        self.eff = eff;
    }

    /// Executes one kernel (roofline over NEON compute and LPDDR5 reach).
    pub fn execute(&mut self, k: &KernelDesc) -> CpuExec {
        let t_compute = k.flops / (self.spec.neon_flops * self.eff.compute_frac);
        let t_memory = k.total_bytes() / (self.spec.mem_bw * self.eff.bw_frac);
        let noise = self.rng.jitter(self.eff.measurement_noise);
        let latency = t_compute.max(t_memory) * noise + self.eff.dispatch_overhead_s;

        // Busy fraction: compute-bound loops load all cores; memory-bound
        // loops leave them stalled at lower dynamic power.
        let busy = if t_compute >= t_memory { 1.0 } else { 0.55 };
        let power_w = self.spec.idle_power_w + self.spec.max_dynamic_power_w * busy;
        CpuExec {
            latency_s: latency,
            energy_j: latency * power_w,
            power_w,
        }
    }

    /// Executes a sequence of kernels, returning total latency/energy.
    pub fn run_phase<'a, I>(&mut self, kernels: I) -> CpuExec
    where
        I: IntoIterator<Item = &'a KernelDesc>,
    {
        let mut meter = EnergyMeter::new();
        for k in kernels {
            let e = self.execute(k);
            meter.record(e.latency_s, e.power_w);
        }
        CpuExec {
            latency_s: meter.elapsed_s(),
            energy_j: meter.energy_j(),
            power_w: meter.avg_power_w(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ComputeKind, KernelClass};
    use crate::spec::OrinSpec;

    fn cpu() -> Cpu {
        Cpu::new(OrinSpec::agx_orin_64gb().cpu, 3)
    }

    /// 1.5B prefill at 128 tokens ≈ 384 GFLOP should take ≈8.4 s on the CPU
    /// (Table XVI).
    #[test]
    fn prefill_1_5b_128_matches_table_xvi() {
        let mut c = cpu();
        let k = KernelDesc::raw(
            KernelClass::Gemm,
            ComputeKind::TensorFp16,
            2.0 * 1.5e9 * 128.0,
            3.0e9,
            0.0,
        );
        let e = c.execute(&k);
        assert!(
            (6.5..11.0).contains(&e.latency_s),
            "expected ~8.4 s, got {}",
            e.latency_s
        );
    }

    /// An 8B decode step reads ≈16 GB; at ≈32 GB/s that is ≈0.5 s/token
    /// (Table XVII: 63.8 s for 128 tokens).
    #[test]
    fn decode_8b_step_matches_table_xvii() {
        let mut c = cpu();
        let k = KernelDesc::raw(
            KernelClass::Gemv,
            ComputeKind::TensorFp16,
            2.0 * 8.0e9,
            16.0e9,
            1.0e6,
        );
        let e = c.execute(&k);
        assert!(
            (0.4..0.62).contains(&e.latency_s),
            "expected ~0.5 s/token, got {}",
            e.latency_s
        );
    }

    #[test]
    fn power_between_idle_and_max() {
        let mut c = cpu();
        let k = KernelDesc::raw(KernelClass::Gemm, ComputeKind::CudaFp32, 1e9, 1e6, 0.0);
        let e = c.execute(&k);
        let spec = OrinSpec::agx_orin_64gb().cpu;
        assert!(e.power_w >= spec.idle_power_w);
        assert!(e.power_w <= spec.idle_power_w + spec.max_dynamic_power_w);
    }

    #[test]
    fn phase_accumulates() {
        let mut c = cpu();
        let k = KernelDesc::raw(KernelClass::Gemv, ComputeKind::TensorFp16, 1e9, 1e9, 0.0);
        let ks = vec![k; 4];
        let total = c.run_phase(ks.iter());
        assert!(total.latency_s > 0.1);
        assert!(total.energy_j > 0.0);
    }
}
