//! # edgereasoning-soc
//!
//! A simulator for the NVIDIA Jetson AGX Orin system-on-chip, the edge
//! platform used throughout the EdgeReasoning study (IISWC 2025).
//!
//! The crate models the pieces of the SoC that determine LLM inference
//! behaviour on the real device:
//!
//! * [`spec::GpuSpec`] — the Ampere GPU: 2048 CUDA cores across 16 SMs,
//!   64 tensor cores, 204.8 GB/s of LPDDR5 bandwidth shared with the CPU,
//!   and the CUTLASS-style tensor-core tile quantization that produces the
//!   stepped 128-token prefill latency pattern reported in the paper.
//! * [`gpu::Gpu`] — a roofline kernel executor: each kernel is described by
//!   its FLOPs, bytes moved and GEMM shape ([`kernel::KernelDesc`]); latency
//!   is the max of compute and memory time divided by shape- and
//!   size-dependent efficiency curves, plus launch overhead and
//!   deterministic measurement jitter.
//! * [`power`] — utilization-driven power draw with the discrete DVFS-like
//!   power states visible in the paper's Fig. 10c, and an energy meter that
//!   integrates P·dt per inference phase.
//! * [`faults`] — a seeded schedule of platform disturbances (thermal
//!   throttling, DRAM-bandwidth contention, power-mode drops, kernel
//!   stalls) applied to the GPU as a [`gpu::Derate`]; the empty schedule is
//!   bit-identical to a fault-free build.
//! * [`thermal`] — *endogenous* throttling: a thermal RC model, a
//!   battery/energy budget with solar recharge, and a
//!   [`thermal::ThermalGovernor`] that converts sustained power draw into
//!   DVFS down-steps and brown-out windows the serving stack must survive.
//! * [`cpu::Cpu`] — the 12-core Arm Cortex-A78AE, used for the paper's
//!   Appendix C CPU-vs-GPU comparison.
//! * [`rng`] / [`stats`] — from-scratch deterministic xoshiro256++ RNG with
//!   Box–Muller normal/lognormal sampling, and the summary statistics used
//!   by the characterization harness (no external numerics dependencies).
//!
//! # Example
//!
//! Run a single memory-bound GEMV (one decode-step weight read of an
//! 8B-parameter model) on a simulated Orin in MAXN mode:
//!
//! ```
//! use edgereasoning_soc::gpu::Gpu;
//! use edgereasoning_soc::kernel::{ComputeKind, KernelClass, KernelDesc};
//! use edgereasoning_soc::spec::{OrinSpec, PowerMode};
//!
//! let mut gpu = Gpu::new(OrinSpec::agx_orin_64gb().gpu, PowerMode::MaxN, 42);
//! let kernel = KernelDesc::gemm(KernelClass::Gemv, ComputeKind::TensorFp16, 1, 4096, 4096)
//!     .with_bytes(2 * 4096 * 4096, 2 * 4096);
//! let exec = gpu.execute(&kernel);
//! assert!(exec.latency_s > 0.0);
//! assert!(exec.energy_j > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must not panic on recoverable states; tests keep their
// expect/unwrap for brevity.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cpu;
pub mod faults;
pub mod gpu;
pub mod kernel;
pub mod power;
pub mod rng;
pub mod runtime;
pub mod spec;
pub mod stats;
pub mod thermal;

pub use cpu::Cpu;
pub use faults::{Disturbance, FaultKind, FaultSchedule};
pub use gpu::{Derate, Gpu, KernelExec, PhaseStats};
pub use kernel::{ComputeKind, KernelClass, KernelDesc};
pub use power::{EnergyMeter, PowerError, PowerGovernor, PowerModel};
pub use rng::Rng;
pub use runtime::{available_threads, item_seed, par_map_deterministic, splitmix64};
pub use spec::{CpuSpec, GpuSpec, OrinSpec, PowerMode};
pub use stats::sketch::DdSketch;
pub use thermal::{
    BatteryConfig, GovernanceConfig, GovernanceError, GovernanceStats, RechargeProfile,
    ThermalConfig, ThermalGovernor,
};
