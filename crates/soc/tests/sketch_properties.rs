//! Property tests for the DDSketch quantile sketch (PR6):
//!
//! * the relative-error bound holds against exact order statistics on
//!   randomized heavy-tailed streams, at every quantile and alpha tried;
//! * merges are bit-for-bit order-invariant under re-sharding: slicing one
//!   stream into shards (built on `par_map_deterministic` lanes) and
//!   merging the shard sketches in any order reproduces the whole-stream
//!   sketch's quantiles exactly.

use edgereasoning_soc::rng::Rng;
use edgereasoning_soc::runtime::par_map_deterministic;
use edgereasoning_soc::stats::sketch::DdSketch;

/// A deterministic heavy-tailed latency-like stream: an exponential base
/// with a long multiplicative tail on every 17th draw.
fn stream(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let base = -rng.next_f64().max(1e-12).ln() * 0.25 + 1e-3;
            if i % 17 == 0 {
                base * (1.0 + 40.0 * rng.next_f64())
            } else {
                base
            }
        })
        .collect()
}

/// The exact sample the sketch's rank convention targets:
/// `sorted[floor(q * (n - 1))]`.
fn exact_rank(sorted: &[f64], q: f64) -> f64 {
    #[allow(clippy::cast_sign_loss)]
    let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
    sorted[rank]
}

const QUANTILES: [f64; 9] = [0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0];

#[test]
fn quantiles_stay_within_alpha_of_exact_order_statistics() {
    for &alpha in &[0.01, 0.02, 0.05] {
        for seed in [3u64, 17, 2024] {
            let xs = stream(seed, 20_000);
            let mut sketch = DdSketch::new(alpha);
            for &x in &xs {
                sketch.record(x);
            }
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            for &q in &QUANTILES {
                let exact = exact_rank(&sorted, q);
                let est = sketch.quantile(q).expect("non-empty");
                assert!(
                    (est - exact).abs() <= alpha * exact,
                    "alpha={alpha} seed={seed} q={q}: est {est} vs exact {exact}"
                );
            }
        }
    }
}

#[test]
fn merged_shards_are_bit_identical_to_whole_stream_ingestion() {
    let xs = stream(7, 50_000);
    let mut whole = DdSketch::new(0.01);
    for &x in &xs {
        whole.record(x);
    }
    // Re-shard the same stream three different ways: round-robin over 3
    // and 13 lanes, and contiguous chunks over 7 lanes.
    let shardings: Vec<Vec<Vec<f64>>> = vec![
        shard_round_robin(&xs, 3),
        shard_round_robin(&xs, 13),
        xs.chunks(xs.len().div_ceil(7))
            .map(<[f64]>::to_vec)
            .collect(),
    ];
    for shards in shardings {
        // Build each shard's sketch on its own deterministic lane.
        let lane_sketches: Vec<DdSketch> = par_map_deterministic(&shards, 0, |_, shard| {
            let mut s = DdSketch::new(0.01);
            for &x in shard {
                s.record(x);
            }
            s
        });
        // Merge in lane order, reverse order, and a pairwise tree: the
        // quantiles must come out bit-identical every time.
        let orders: [Vec<usize>; 2] = [
            (0..lane_sketches.len()).collect(),
            (0..lane_sketches.len()).rev().collect(),
        ];
        for order in orders {
            let mut merged = DdSketch::new(0.01);
            for &i in &order {
                merged.merge(&lane_sketches[i]);
            }
            assert_eq!(merged.count(), whole.count());
            for &q in &QUANTILES {
                assert_eq!(
                    merged.quantile(q).expect("non-empty").to_bits(),
                    whole.quantile(q).expect("non-empty").to_bits(),
                    "q={q}: merge order {order:?} must not change the estimate"
                );
            }
        }
        let tree = tree_merge(&lane_sketches);
        for &q in &QUANTILES {
            assert_eq!(
                tree.quantile(q).expect("non-empty").to_bits(),
                whole.quantile(q).expect("non-empty").to_bits(),
                "q={q}: tree merge must not change the estimate"
            );
        }
    }
}

fn shard_round_robin(xs: &[f64], lanes: usize) -> Vec<Vec<f64>> {
    let mut shards = vec![Vec::new(); lanes];
    for (i, &x) in xs.iter().enumerate() {
        shards[i % lanes].push(x);
    }
    shards
}

/// Pairwise reduction, the grouping a parallel reducer would use.
fn tree_merge(sketches: &[DdSketch]) -> DdSketch {
    let mut layer: Vec<DdSketch> = sketches.to_vec();
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|pair| {
                let mut m = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    m.merge(b);
                }
                m
            })
            .collect();
    }
    layer
        .into_iter()
        .next()
        .unwrap_or_else(|| DdSketch::new(0.01))
}
