//! # edgereasoning-workloads
//!
//! Synthetic stand-ins for the evaluation benchmarks of the EdgeReasoning
//! paper: MMLU-Redux (3 000 questions), MMLU (15 000), AIME2024, MATH500
//! and the three Natural-Plan tasks (calendar / meeting / trip planning).
//!
//! The study never inspects question *text* — it consumes, per question, a
//! prompt length, a difficulty, the answer format (multiple choice vs exact
//! match) and grading. The generators here produce seeded questions with
//! difficulty and prompt-length distributions calibrated so that the model
//! behaviour profiles of `edgereasoning-models` reproduce the paper's
//! published per-benchmark accuracies.
//!
//! [`prompt::PromptConfig`] implements the paper's §V prompting arms: the
//! unconstrained `Base`, hard token budgets (`[n]T`), soft in-prompt limits
//! (`[n]-NC`), the NR no-thinking injection, and plain `Direct` prompting
//! of non-reasoning models.
//!
//! # Example
//!
//! ```
//! use edgereasoning_workloads::prompt::PromptConfig;
//! use edgereasoning_workloads::suite::Benchmark;
//!
//! let questions = Benchmark::MmluRedux.generate(42);
//! assert_eq!(questions.len(), 3000);
//! assert!(questions.iter().all(|q| q.choices == Some(4)));
//!
//! // Hard budgets cap decoding; soft limits only ask nicely.
//! assert_eq!(PromptConfig::Hard(128).max_decode_tokens(), Some(128));
//! assert_eq!(PromptConfig::Soft(128).max_decode_tokens(), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must not panic on recoverable states; tests keep their
// expect/unwrap for brevity.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod mix;
pub mod prompt;
pub mod question;
pub mod session;
pub mod suite;

pub use mix::TrafficMix;
pub use prompt::PromptConfig;
pub use question::Question;
pub use session::{SessionGen, SessionMixConfig, SessionTurn};
pub use suite::{Benchmark, PlanTask};
