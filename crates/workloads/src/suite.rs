//! Benchmark suites and their generators.

use edgereasoning_soc::rng::Rng;
use serde::{Deserialize, Serialize};

use crate::question::Question;

/// The three Natural-Plan planning tasks (paper Appendix B, Tables
/// XIII–XV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanTask {
    /// Calendar scheduling.
    Calendar,
    /// Meeting planning.
    Meeting,
    /// Trip planning.
    Trip,
}

impl PlanTask {
    /// All three tasks in table order.
    pub const ALL: [PlanTask; 3] = [PlanTask::Calendar, PlanTask::Meeting, PlanTask::Trip];
}

impl std::fmt::Display for PlanTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanTask::Calendar => write!(f, "calendar"),
            PlanTask::Meeting => write!(f, "meeting"),
            PlanTask::Trip => write!(f, "trip"),
        }
    }
}

/// Skill domain a benchmark draws on; model capabilities are per-domain
/// (DeepScaleR's RL fine-tuning lifts math far above its general skill).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Broad knowledge + reasoning (MMLU family).
    General,
    /// Competition mathematics (AIME, MATH500).
    Math,
    /// Constraint-satisfaction planning (Natural-Plan).
    Planning,
}

/// The benchmarks evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// MMLU-Redux: 3 000 four-way multiple-choice questions (the paper's
    /// main evaluation set, Figs. 6–9 and Tables X/XI).
    MmluRedux,
    /// Full MMLU: 15 000 questions (Table XII).
    Mmlu,
    /// AIME 2024: 30 exact-answer competition math problems (Table III).
    Aime2024,
    /// MATH500: 500 exact-answer math problems (Table III).
    Math500,
    /// Natural-Plan planning tasks (Tables XIII–XV).
    NaturalPlan(PlanTask),
}

/// Distribution parameters of one benchmark's question population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuiteParams {
    /// Number of questions.
    pub count: u32,
    /// Mean difficulty (logit scale).
    pub difficulty_mean: f64,
    /// Difficulty standard deviation.
    pub difficulty_std: f64,
    /// `Some(n)` for n-way multiple choice.
    pub choices: Option<u8>,
    /// Mean prompt length, tokens.
    pub prompt_mean: f64,
    /// Prompt length standard deviation, tokens.
    pub prompt_std: f64,
    /// Skill domain.
    pub domain: Domain,
}

impl Benchmark {
    /// The suites used across the paper's tables.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::MmluRedux,
        Benchmark::Mmlu,
        Benchmark::Aime2024,
        Benchmark::Math500,
        Benchmark::NaturalPlan(PlanTask::Calendar),
        Benchmark::NaturalPlan(PlanTask::Meeting),
        Benchmark::NaturalPlan(PlanTask::Trip),
    ];

    /// The benchmark's population parameters.
    pub fn params(self) -> SuiteParams {
        match self {
            Benchmark::MmluRedux => SuiteParams {
                count: 3000,
                difficulty_mean: 0.0,
                difficulty_std: 1.30,
                choices: Some(4),
                prompt_mean: 110.0,
                prompt_std: 35.0,
                domain: Domain::General,
            },
            Benchmark::Mmlu => SuiteParams {
                count: 15_000,
                difficulty_mean: -0.05,
                difficulty_std: 1.35,
                choices: Some(4),
                prompt_mean: 105.0,
                prompt_std: 35.0,
                domain: Domain::General,
            },
            Benchmark::Aime2024 => SuiteParams {
                count: 30,
                difficulty_mean: 3.0,
                difficulty_std: 1.0,
                choices: None,
                prompt_mean: 150.0,
                prompt_std: 40.0,
                domain: Domain::Math,
            },
            Benchmark::Math500 => SuiteParams {
                count: 500,
                difficulty_mean: 0.9,
                difficulty_std: 1.3,
                choices: None,
                prompt_mean: 120.0,
                prompt_std: 40.0,
                domain: Domain::Math,
            },
            Benchmark::NaturalPlan(task) => {
                let (mean, std, prompt) = match task {
                    PlanTask::Calendar => (3.8, 1.5, 900.0),
                    PlanTask::Meeting => (4.0, 1.5, 1100.0),
                    PlanTask::Trip => (5.3, 1.4, 1000.0),
                };
                SuiteParams {
                    count: 500,
                    difficulty_mean: mean,
                    difficulty_std: std,
                    choices: None,
                    prompt_mean: prompt,
                    prompt_std: 250.0,
                    domain: Domain::Planning,
                }
            }
        }
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> String {
        match self {
            Benchmark::MmluRedux => "MMLU-Redux".to_owned(),
            Benchmark::Mmlu => "MMLU".to_owned(),
            Benchmark::Aime2024 => "AIME2024".to_owned(),
            Benchmark::Math500 => "MATH500".to_owned(),
            Benchmark::NaturalPlan(t) => format!("Natural-Plan/{t}"),
        }
    }

    /// Generates the benchmark's questions deterministically from a seed.
    pub fn generate(self, seed: u64) -> Vec<Question> {
        let p = self.params();
        let mut rng = Rng::seed_from_u64(seed ^ 0x5745_4c44 ^ (self.tag() << 32));
        (0..p.count)
            .map(|idx| {
                let difficulty = rng.normal_with(p.difficulty_mean, p.difficulty_std);
                let u = rng.next_f64();
                // Most questions have weak attractor distractors; a tail of
                // "trick" questions concentrates failures on one answer.
                let trap_strength = 0.15 + 0.55 * u * u;
                let prompt_tokens = rng
                    .normal_with(p.prompt_mean, p.prompt_std)
                    .clamp(p.prompt_mean * 0.3, p.prompt_mean * 3.0)
                    .round() as usize;
                Question {
                    idx,
                    difficulty,
                    choices: p.choices,
                    trap_strength,
                    prompt_tokens: prompt_tokens.max(8),
                }
            })
            .collect()
    }

    /// A subsample of the first `n` questions (the paper uses 150-question
    /// and 50-question subsets in Tables II and VI).
    pub fn generate_subset(self, seed: u64, n: usize) -> Vec<Question> {
        let mut qs = self.generate(seed);
        qs.truncate(n);
        qs
    }

    fn tag(self) -> u64 {
        match self {
            Benchmark::MmluRedux => 1,
            Benchmark::Mmlu => 2,
            Benchmark::Aime2024 => 3,
            Benchmark::Math500 => 4,
            Benchmark::NaturalPlan(PlanTask::Calendar) => 5,
            Benchmark::NaturalPlan(PlanTask::Meeting) => 6,
            Benchmark::NaturalPlan(PlanTask::Trip) => 7,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgereasoning_soc::stats;

    #[test]
    fn counts_match_paper() {
        assert_eq!(Benchmark::MmluRedux.generate(1).len(), 3000);
        assert_eq!(Benchmark::Mmlu.generate(1).len(), 15_000);
        assert_eq!(Benchmark::Aime2024.generate(1).len(), 30);
        assert_eq!(Benchmark::Math500.generate(1).len(), 500);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Benchmark::MmluRedux.generate(9);
        let b = Benchmark::MmluRedux.generate(9);
        assert_eq!(a, b);
        let c = Benchmark::MmluRedux.generate(10);
        assert_ne!(a, c);
    }

    #[test]
    fn difficulty_distribution_matches_params() {
        let qs = Benchmark::MmluRedux.generate(3);
        let ds: Vec<f64> = qs.iter().map(|q| q.difficulty).collect();
        let mean = stats::mean(&ds).unwrap();
        let std = stats::std_dev(&ds).unwrap();
        assert!(mean.abs() < 0.08, "mean {mean}");
        assert!((std - 1.30).abs() < 0.08, "std {std}");
    }

    #[test]
    fn math_benchmarks_are_exact_match() {
        assert!(Benchmark::Aime2024
            .generate(1)
            .iter()
            .all(|q| q.choices.is_none()));
        assert!(Benchmark::MmluRedux
            .generate(1)
            .iter()
            .all(|q| q.choices == Some(4)));
    }

    #[test]
    fn aime_is_much_harder_than_mmlu() {
        let aime = Benchmark::Aime2024.params();
        let mmlu = Benchmark::MmluRedux.params();
        assert!(aime.difficulty_mean > mmlu.difficulty_mean + 2.0);
    }

    #[test]
    fn planning_prompts_are_long() {
        let qs = Benchmark::NaturalPlan(PlanTask::Meeting).generate(2);
        let mean = stats::mean(
            &qs.iter()
                .map(|q| q.prompt_tokens as f64)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(mean > 700.0, "planning prompts should be long, got {mean}");
    }

    #[test]
    fn subset_is_prefix() {
        let full = Benchmark::MmluRedux.generate(4);
        let sub = Benchmark::MmluRedux.generate_subset(4, 150);
        assert_eq!(sub.len(), 150);
        assert_eq!(&full[..150], &sub[..]);
    }

    #[test]
    fn distinct_benchmarks_have_distinct_questions() {
        let a = Benchmark::MmluRedux.generate(1);
        let b = Benchmark::Mmlu.generate(1);
        assert_ne!(a[0].difficulty, b[0].difficulty);
    }

    #[test]
    fn trap_strength_in_range() {
        for q in Benchmark::MmluRedux.generate(5) {
            assert!((0.15..=0.70).contains(&q.trap_strength));
        }
    }
}
