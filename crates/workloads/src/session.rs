//! Session-aware request traces: multi-turn agent loops over shared
//! prompt templates.
//!
//! The benchmark suites in this crate model *single-shot* questions. Real
//! edge deployments of reasoning agents (ailoy-style tool loops, chat
//! assistants) look different in exactly the ways that matter for KV
//! reuse:
//!
//! * **Sessions** — a user opens a session and issues several turns; each
//!   turn's prompt is the previous turn's full context (template + every
//!   earlier user message and model reply) plus the new user message, so
//!   turn *t−1*'s context is a strict prefix of turn *t*'s prompt.
//! * **Templates** — sessions draw their system prompt from a small pool
//!   of long templates (tool schemas, few-shot exemplars), shared across
//!   *all* concurrent sessions.
//! * **Think time** — turns within a session are separated by lognormal
//!   pauses (the user reads the reply, the agent executes a tool).
//!
//! [`SessionGen`] emits such a trace lazily in global arrival order with
//! memory proportional to the number of *concurrent* sessions, not the
//! trace length — a 10^6-turn study never materializes the trace. Each
//! [`SessionTurn`] carries a block-granular prefix signature compatible
//! with the engine's radix prefix cache: one `u64` per full KV block,
//! template-owned blocks hashed from the template identity (shared across
//! sessions) and history blocks from the session identity (shared across
//! that session's turns only).
//!
//! # Example
//!
//! ```
//! use edgereasoning_workloads::session::SessionMixConfig;
//!
//! let cfg = SessionMixConfig::template_heavy(0.5, 200, 42);
//! let turns: Vec<_> = cfg.generate().collect();
//! assert!(turns.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
//! // Later turns of one session extend earlier ones' signatures.
//! let s0: Vec<_> = turns.iter().filter(|t| t.session == 0).collect();
//! assert!(s0.windows(2).all(|w| w[1].prefix.starts_with(&w[0].prefix)));
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use edgereasoning_soc::rng::stable_hash;
use edgereasoning_soc::{item_seed, Rng};

/// One request of a session trace: a turn of some session, with its
/// arrival instant, prompt/output shape, and block-granular prefix
/// signature for the engine's radix KV cache.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionTurn {
    /// Absolute arrival time, seconds (globally sorted across sessions).
    pub arrival_s: f64,
    /// Session index (0-based, in session-start order).
    pub session: usize,
    /// Turn index within the session (0-based).
    pub turn: usize,
    /// Prompt length in tokens: template + conversation history + the new
    /// user message.
    pub prompt_tokens: usize,
    /// Output budget in tokens.
    pub output_tokens: usize,
    /// Identities of the prompt's full KV blocks (template blocks shared
    /// across sessions, history blocks shared across the session's turns).
    pub prefix: Vec<u64>,
}

/// Shape of a session/template mix, modeled on agent reasoning loops:
/// Poisson session starts, geometric-ish turn counts, lognormal think
/// time, and a template pool shared across sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionMixConfig {
    /// New-session arrival rate, sessions per second.
    pub session_qps: f64,
    /// Number of sessions in the trace.
    pub sessions: usize,
    /// Minimum turns per session (inclusive).
    pub min_turns: usize,
    /// Maximum turns per session (inclusive).
    pub max_turns: usize,
    /// Mean think time between a reply and the next turn, seconds.
    pub think_mean_s: f64,
    /// Think-time standard deviation, seconds (lognormal-shaped).
    pub think_std_s: f64,
    /// Size of the shared template pool.
    pub templates: usize,
    /// Template length, tokens (system prompt + tool schemas + few-shot).
    pub template_tokens: usize,
    /// Minimum new-user-message length per turn, tokens (inclusive).
    pub min_user_tokens: usize,
    /// Maximum new-user-message length per turn, tokens (inclusive).
    pub max_user_tokens: usize,
    /// Minimum reply length per turn, tokens (inclusive).
    pub min_output_tokens: usize,
    /// Maximum reply length per turn, tokens (inclusive).
    pub max_output_tokens: usize,
    /// KV block size the prefix signature is aligned to; must match the
    /// serving engine's `kv_block_tokens` for signatures to be reusable.
    pub block_tokens: usize,
    /// Trace seed; same seed, same trace.
    pub seed: u64,
}

impl SessionMixConfig {
    /// A template-heavy mix: many short sessions (1–2 turns) over a tiny
    /// pool of long templates — the regime where cross-*user* reuse
    /// dominates (fleet assistants, form-filling agents).
    #[must_use]
    pub fn template_heavy(session_qps: f64, sessions: usize, seed: u64) -> Self {
        Self {
            session_qps,
            sessions,
            min_turns: 1,
            max_turns: 2,
            think_mean_s: 20.0,
            think_std_s: 15.0,
            templates: 4,
            template_tokens: 3072,
            min_user_tokens: 24,
            max_user_tokens: 72,
            min_output_tokens: 24,
            max_output_tokens: 72,
            block_tokens: 16,
            seed,
        }
    }

    /// A session-heavy mix: long multi-turn conversations with growing
    /// contexts over a wider template pool — the regime where
    /// within-*session* reuse dominates (agent reasoning loops).
    #[must_use]
    pub fn session_heavy(session_qps: f64, sessions: usize, seed: u64) -> Self {
        Self {
            session_qps,
            sessions,
            min_turns: 4,
            max_turns: 10,
            think_mean_s: 12.0,
            think_std_s: 8.0,
            templates: 32,
            template_tokens: 512,
            min_user_tokens: 24,
            max_user_tokens: 96,
            min_output_tokens: 64,
            max_output_tokens: 256,
            block_tokens: 16,
            seed,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// A description of the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.session_qps.is_nan() || self.session_qps <= 0.0 {
            return Err("session_qps must be positive".into());
        }
        if self.sessions == 0 {
            return Err("sessions must be at least 1".into());
        }
        if self.min_turns == 0 || self.min_turns > self.max_turns {
            return Err("need 1 <= min_turns <= max_turns".into());
        }
        if self.templates == 0 {
            return Err("templates must be at least 1".into());
        }
        if self.min_user_tokens == 0 || self.min_user_tokens > self.max_user_tokens {
            return Err("need 1 <= min_user_tokens <= max_user_tokens".into());
        }
        if self.min_output_tokens == 0 || self.min_output_tokens > self.max_output_tokens {
            return Err("need 1 <= min_output_tokens <= max_output_tokens".into());
        }
        if self.block_tokens == 0 {
            return Err("block_tokens must be positive".into());
        }
        if self.think_mean_s.is_nan() || self.think_mean_s <= 0.0 || self.think_std_s < 0.0 {
            return Err("think time must be positive".into());
        }
        Ok(())
    }

    /// Builds the lazy, arrival-sorted turn generator.
    ///
    /// # Panics
    ///
    /// When the configuration is invalid (see [`Self::validate`]).
    #[must_use]
    pub fn generate(&self) -> SessionGen {
        assert!(self.validate().is_ok(), "invalid SessionMixConfig");
        SessionGen::new(*self)
    }

    /// Expected number of turns in the trace (mean of the uniform turn
    /// count times the session count) — sizing hint for studies.
    #[must_use]
    pub fn expected_turns(&self) -> f64 {
        self.sessions as f64 * (self.min_turns + self.max_turns) as f64 / 2.0
    }
}

/// Per-session live state while the generator is between its turns.
#[derive(Debug, Clone)]
struct LiveSession {
    rng: Rng,
    template: usize,
    turns_left: usize,
    next_turn: usize,
    /// Tokens of context accumulated so far (template + history).
    context_tokens: usize,
}

/// A pending emission, ordered by arrival. Ties break on session index so
/// the order is total and seed-stable (f64 bits are a valid total order
/// here because all arrivals are finite and non-negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Pending {
    arrival_bits: u64,
    session: usize,
}

/// Lazy generator of globally arrival-sorted [`SessionTurn`]s.
///
/// Session starts are a Poisson process; each session is an independent
/// RNG stream (seeded via [`item_seed`]) so the trace is insensitive to
/// interleaving. Memory is `O(concurrent sessions)`: a binary heap of
/// next-turn events plus one live record per unfinished session.
#[derive(Debug, Clone)]
pub struct SessionGen {
    cfg: SessionMixConfig,
    starts: Rng,
    next_start_s: f64,
    started: usize,
    heap: BinaryHeap<Reverse<Pending>>,
    live: Vec<Option<LiveSession>>,
}

impl SessionGen {
    fn new(cfg: SessionMixConfig) -> Self {
        let mut starts = Rng::seed_from_u64(cfg.seed ^ 0x5e55_10f5);
        let first = Self::exp_gap(&mut starts, cfg.session_qps);
        Self {
            cfg,
            starts,
            next_start_s: first,
            started: 0,
            heap: BinaryHeap::new(),
            live: Vec::new(),
        }
    }

    fn exp_gap(rng: &mut Rng, qps: f64) -> f64 {
        -rng.next_f64().max(1e-12).ln() / qps
    }

    /// Spawns session `started` at `next_start_s` and schedules its first
    /// turn (arriving at the session start — the user opens with a
    /// message).
    fn spawn_next_session(&mut self) {
        let idx = self.started;
        let mut rng = Rng::seed_from_u64(item_seed(self.cfg.seed, idx as u64));
        let template = rng.range_usize(self.cfg.templates);
        let turns =
            self.cfg.min_turns + rng.range_usize(self.cfg.max_turns - self.cfg.min_turns + 1);
        let session = LiveSession {
            rng,
            template,
            turns_left: turns,
            next_turn: 0,
            context_tokens: self.cfg.template_tokens,
        };
        if self.live.len() <= idx {
            self.live.resize(idx + 1, None);
        }
        self.live[idx] = Some(session);
        self.heap.push(Reverse(Pending {
            arrival_bits: self.next_start_s.to_bits(),
            session: idx,
        }));
        self.started += 1;
        self.next_start_s += Self::exp_gap(&mut self.starts, self.cfg.session_qps);
    }

    /// Block-granular signature of a `prompt_tokens`-long prompt whose
    /// first `template_tokens` belong to template `template` and whose
    /// remainder is session-private history.
    fn signature(&self, template: usize, session: usize, prompt_tokens: usize) -> Vec<u64> {
        let bt = self.cfg.block_tokens;
        let full_blocks = prompt_tokens / bt;
        let template_blocks = self.cfg.template_tokens / bt;
        (0..full_blocks)
            .map(|j| {
                if j < template_blocks {
                    stable_hash(&[0, template as u64, j as u64])
                } else {
                    stable_hash(&[1, self.cfg.seed, session as u64, j as u64])
                }
            })
            .collect()
    }
}

impl Iterator for SessionGen {
    type Item = SessionTurn;

    fn next(&mut self) -> Option<Self::Item> {
        // Keep spawning sessions until the earliest pending turn precedes
        // the next session start — then the heap top is globally next.
        loop {
            let top = self
                .heap
                .peek()
                .map(|Reverse(p)| f64::from_bits(p.arrival_bits));
            let more_starts = self.started < self.cfg.sessions;
            match top {
                Some(t) if !(more_starts && self.next_start_s < t) => break,
                Some(_) | None if more_starts => self.spawn_next_session(),
                Some(_) => break,
                None => return None,
            }
        }
        let Reverse(pending) = self.heap.pop()?;
        let arrival_s = f64::from_bits(pending.arrival_bits);
        let slot = self.live.get_mut(pending.session)?.as_mut()?;
        let user = slot
            .rng
            .range_usize(self.cfg.max_user_tokens - self.cfg.min_user_tokens + 1)
            + self.cfg.min_user_tokens;
        let output = slot
            .rng
            .range_usize(self.cfg.max_output_tokens - self.cfg.min_output_tokens + 1)
            + self.cfg.min_output_tokens;
        let shared_context = slot.context_tokens;
        let prompt_tokens = shared_context + user;
        let turn = slot.next_turn;
        let template = slot.template;
        slot.next_turn += 1;
        slot.turns_left -= 1;
        if slot.turns_left == 0 {
            self.live[pending.session] = None;
        } else {
            // The reply joins the context; the next turn arrives after a
            // think-time pause following the (approximate) reply instant.
            slot.context_tokens = prompt_tokens + output;
            let think = slot
                .rng
                .lognormal_mean_std(self.cfg.think_mean_s, self.cfg.think_std_s);
            self.heap.push(Reverse(Pending {
                arrival_bits: (arrival_s + think).to_bits(),
                session: pending.session,
            }));
        }
        // The signature covers only the *shared* context (template +
        // history); the fresh user message is private to this turn.
        let bt = self.cfg.block_tokens;
        let shared_blocks = shared_context / bt;
        let mut prefix = self.signature(template, pending.session, prompt_tokens);
        prefix.truncate(shared_blocks);
        Some(SessionTurn {
            arrival_s,
            session: pending.session,
            turn,
            prompt_tokens,
            output_tokens: output,
            prefix,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_sorted_and_deterministic() {
        let cfg = SessionMixConfig::session_heavy(1.0, 50, 7);
        let a: Vec<_> = cfg.generate().collect();
        let b: Vec<_> = cfg.generate().collect();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.len() >= 50 * cfg.min_turns && a.len() <= 50 * cfg.max_turns);
    }

    #[test]
    fn later_turns_extend_earlier_signatures() {
        let cfg = SessionMixConfig::session_heavy(2.0, 20, 11);
        let turns: Vec<_> = cfg.generate().collect();
        for s in 0..20 {
            let mine: Vec<_> = turns.iter().filter(|t| t.session == s).collect();
            assert!(!mine.is_empty());
            for w in mine.windows(2) {
                assert_eq!(w[1].turn, w[0].turn + 1);
                assert!(w[1].prefix.starts_with(&w[0].prefix), "history must nest");
                assert!(w[1].prompt_tokens > w[0].prompt_tokens, "contexts grow");
            }
        }
    }

    #[test]
    fn template_blocks_are_shared_across_sessions() {
        let cfg = SessionMixConfig::template_heavy(1.0, 40, 3);
        let turns: Vec<_> = cfg.generate().collect();
        let tb = cfg.template_tokens / cfg.block_tokens;
        // Two sessions on the same template share its block signatures.
        let mut by_first_block: Vec<(u64, usize)> = Vec::new();
        for t in &turns {
            assert!(t.prefix.len() >= tb, "turn signature covers the template");
            by_first_block.push((t.prefix[0], t.session));
        }
        let distinct: std::collections::BTreeSet<u64> =
            by_first_block.iter().map(|&(sig, _)| sig).collect();
        assert!(
            distinct.len() <= cfg.templates,
            "at most one first-block signature per template"
        );
        // History blocks never collide across sessions.
        let mut history: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
        for t in &turns {
            for &sig in t.prefix.iter().skip(tb) {
                let owner = history.entry(sig).or_insert(t.session);
                assert_eq!(*owner, t.session, "history blocks are session-private");
            }
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = SessionMixConfig::template_heavy(1.0, 10, 0);
        cfg.min_turns = 0;
        assert!(cfg.validate().is_err());
        cfg = SessionMixConfig::template_heavy(1.0, 10, 0);
        cfg.block_tokens = 0;
        assert!(cfg.validate().is_err());
        cfg = SessionMixConfig::session_heavy(0.0, 10, 0);
        assert!(cfg.validate().is_err());
    }
}
