//! Prompting configurations (the paper's §V evaluation arms).

use serde::{Deserialize, Serialize};

/// How a question is presented to the model and how decoding is bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PromptConfig {
    /// Unconstrained chain-of-thought generation (reasoning models) —
    /// `Base` in the paper's tables.
    #[default]
    Base,
    /// Hard-length control `[n]T`: an "Answer in n words" instruction *and* strict
    /// engine-side truncation at `n` tokens.
    Hard(u32),
    /// Soft-length control `[n]-NC`: the same instruction, natural
    /// completion (no enforcement) — models routinely overshoot.
    Soft(u32),
    /// No-Reasoning: a pre-filled empty thinking block is injected so the
    /// model skips explicit chain-of-thought (Ma et al., paper reference 22).
    NoReason,
    /// Plain direct prompting of non-reasoning instruction-tuned models.
    Direct,
}

impl PromptConfig {
    /// The configurations swept for reasoning models in Figs. 6–8.
    pub const REASONING_SWEEP: [PromptConfig; 6] = [
        PromptConfig::Base,
        PromptConfig::Soft(128),
        PromptConfig::Soft(256),
        PromptConfig::NoReason,
        PromptConfig::Hard(128),
        PromptConfig::Hard(256),
    ];

    /// Engine-side decode cap, if any (only hard budgets truncate).
    pub fn max_decode_tokens(self) -> Option<u32> {
        match self {
            PromptConfig::Hard(n) => Some(n),
            _ => None,
        }
    }

    /// Extra prompt tokens added by the configuration's instruction text /
    /// injected thinking block, on top of the question itself.
    pub fn prompt_overhead_tokens(self) -> usize {
        match self {
            PromptConfig::Base => 24,    // CoT system prompt
            PromptConfig::Hard(_) => 40, // + length instruction
            PromptConfig::Soft(_) => 40,
            PromptConfig::NoReason => 46, // + pre-filled think block
            PromptConfig::Direct => 12,
        }
    }

    /// The label used in the paper's tables ("Base", "128T", "128 (NC)",
    /// "NR", "Direct").
    pub fn label(self) -> String {
        match self {
            PromptConfig::Base => "Base".to_owned(),
            PromptConfig::Hard(n) => format!("{n}T"),
            PromptConfig::Soft(n) => format!("{n} (NC)"),
            PromptConfig::NoReason => "NR".to_owned(),
            PromptConfig::Direct => "Direct".to_owned(),
        }
    }
}

impl std::fmt::Display for PromptConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(PromptConfig::Hard(128).label(), "128T");
        assert_eq!(PromptConfig::Soft(256).label(), "256 (NC)");
        assert_eq!(PromptConfig::NoReason.label(), "NR");
        assert_eq!(PromptConfig::Base.to_string(), "Base");
    }

    #[test]
    fn only_hard_budgets_truncate() {
        assert_eq!(PromptConfig::Hard(256).max_decode_tokens(), Some(256));
        for c in [
            PromptConfig::Base,
            PromptConfig::Soft(128),
            PromptConfig::NoReason,
        ] {
            assert_eq!(c.max_decode_tokens(), None);
        }
    }

    #[test]
    fn overheads_are_positive_and_config_dependent() {
        assert!(
            PromptConfig::NoReason.prompt_overhead_tokens()
                > PromptConfig::Direct.prompt_overhead_tokens()
        );
        for c in PromptConfig::REASONING_SWEEP {
            assert!(c.prompt_overhead_tokens() > 0);
        }
    }
}
