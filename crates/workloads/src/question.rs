//! Individual benchmark questions.

use serde::{Deserialize, Serialize};

/// One benchmark question, reduced to the attributes the study consumes.
///
/// Difficulty lives on a logit scale: a model whose effective skill equals
/// the question's difficulty solves it with probability ½ (before the
/// multiple-choice guess floor).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Question {
    /// Index within its benchmark.
    pub idx: u32,
    /// Solve difficulty on the logit scale.
    pub difficulty: f64,
    /// `Some(n)` for n-way multiple choice; `None` for exact-match grading
    /// (math answers, plan schedules) where guessing scores zero.
    pub choices: Option<u8>,
    /// Strength of the question's "attractor" wrong answer: the fraction
    /// of failure mass that lands on one specific distractor instead of
    /// spreading uniformly. This is what makes majority voting *degrade*
    /// on weak models at high parallel-scaling factors (paper Fig. 9).
    pub trap_strength: f64,
    /// Question prompt length in tokens (before config overhead).
    pub prompt_tokens: usize,
}

impl Question {
    /// Probability that a *failed* attempt lands on the attractor
    /// distractor (vs a uniform other wrong choice).
    pub fn trap_mass(&self) -> f64 {
        self.trap_strength.clamp(0.0, 1.0)
    }

    /// Whether grading offers a guess floor (multiple choice) or not.
    pub fn is_multiple_choice(&self) -> bool {
        self.choices.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_mass_is_clamped() {
        let q = Question {
            idx: 0,
            difficulty: 0.0,
            choices: Some(4),
            trap_strength: 1.7,
            prompt_tokens: 100,
        };
        assert_eq!(q.trap_mass(), 1.0);
        assert!(q.is_multiple_choice());
    }
}
