//! Mixed-criticality traffic compositions.
//!
//! The serving engine tags each arrival Interactive / Batch / Background
//! and admits by class; workloads own the *composition* — what fraction
//! of a deployment's traffic sits in each class. This module defines the
//! canonical compositions used by the overload study so the bins and the
//! engine agree on one source of truth for "what does edge traffic look
//! like".

use serde::{Deserialize, Serialize};

/// Fractions of offered traffic per priority class. Must be finite,
/// non-negative, and sum to 1 (within [`TrafficMix::SUM_TOL`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficMix {
    /// Latency-critical requests (a human or a control loop is waiting).
    pub interactive: f64,
    /// Throughput-oriented requests with a deadline but slack (report
    /// generation, plan refinement).
    pub batch: f64,
    /// Best-effort requests that tolerate shedding (log summarization,
    /// speculative prefetch).
    pub background: f64,
}

impl TrafficMix {
    /// Tolerance on `interactive + batch + background == 1`.
    pub const SUM_TOL: f64 = 1e-9;

    /// The mixed-criticality composition of a general edge gateway:
    /// 20% interactive, 50% batch, 30% background. Matches the engine's
    /// `PriorityMix::EDGE_MIX` and the overload study.
    pub const EDGE_GATEWAY: TrafficMix = TrafficMix {
        interactive: 0.2,
        batch: 0.5,
        background: 0.3,
    };

    /// A robot or kiosk whose traffic is dominated by its control/chat
    /// loop: 60% interactive, 30% batch, 10% background.
    pub const ROBOT_ASSISTANT: TrafficMix = TrafficMix {
        interactive: 0.6,
        batch: 0.3,
        background: 0.1,
    };

    /// An overnight analytics box: 5% interactive, 35% batch, 60%
    /// background — almost everything is sheddable.
    pub const ANALYTICS_NODE: TrafficMix = TrafficMix {
        interactive: 0.05,
        batch: 0.35,
        background: 0.6,
    };

    /// Single-class traffic (everything interactive) — the degenerate
    /// mix under which priority admission must reduce to FIFO.
    pub const INTERACTIVE_ONLY: TrafficMix = TrafficMix {
        interactive: 1.0,
        batch: 0.0,
        background: 0.0,
    };

    /// All canonical presets, for sweeps.
    pub const PRESETS: [TrafficMix; 3] = [
        TrafficMix::EDGE_GATEWAY,
        TrafficMix::ROBOT_ASSISTANT,
        TrafficMix::ANALYTICS_NODE,
    ];

    /// Checks the mix is a valid probability split.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("interactive", self.interactive),
            ("batch", self.batch),
            ("background", self.background),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} fraction must be finite and >= 0, got {v}"));
            }
        }
        let sum = self.interactive + self.batch + self.background;
        if (sum - 1.0).abs() > Self::SUM_TOL {
            return Err(format!("class fractions must sum to 1, got {sum}"));
        }
        Ok(())
    }

    /// The fractions in engine class-rank order
    /// `[interactive, batch, background]`.
    #[must_use]
    pub fn fractions(&self) -> [f64; 3] {
        [self.interactive, self.batch, self.background]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_probability_splits() {
        for mix in TrafficMix::PRESETS {
            mix.validate().unwrap();
        }
        TrafficMix::INTERACTIVE_ONLY.validate().unwrap();
    }

    #[test]
    fn broken_mixes_are_rejected() {
        let bad_sum = TrafficMix {
            interactive: 0.5,
            batch: 0.5,
            background: 0.5,
        };
        assert!(bad_sum.validate().unwrap_err().contains("sum to 1"));
        let negative = TrafficMix {
            interactive: -0.1,
            batch: 0.6,
            background: 0.5,
        };
        assert!(negative.validate().unwrap_err().contains("interactive"));
        let nan = TrafficMix {
            background: f64::NAN,
            ..TrafficMix::EDGE_GATEWAY
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn fractions_are_in_class_rank_order() {
        let m = TrafficMix::EDGE_GATEWAY;
        assert_eq!(m.fractions(), [0.2, 0.5, 0.3]);
    }
}
