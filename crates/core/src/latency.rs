//! The paper's analytical latency models (§IV-A, Eqns. 1–3).
//!
//! * Prefill: `L_prefill(I) = a·I_pad² + b·I_pad + c` with
//!   `I_pad = ⌈I/128⌉·128` (tensor-core padding).
//! * Decode: `L_decode(I, O) = n·O + m·(I·O + O(O−1)/2)` — the closed-form
//!   sum of a per-token time that grows linearly with context.
//! * Total: their sum; invertible to answer "how many tokens fit in a
//!   latency budget?" (takeaway #6).

use edgereasoning_kernels::arch::ModelId;
use serde::{Deserialize, Serialize};

use crate::fit::{least_squares_fixed, polyfit_weighted};

/// Tensor-core padding quantum used by the paper (128 tokens).
pub const PAD: usize = 128;

/// Pads an input length to the model's 128-token quantum.
pub fn pad_input(i: usize) -> f64 {
    (i.div_ceil(PAD) * PAD) as f64
}

/// One latency measurement used for fitting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySample {
    /// Input (prompt) tokens.
    pub input_tokens: usize,
    /// Output (decoded) tokens.
    pub output_tokens: usize,
    /// Measured latency, seconds.
    pub latency_s: f64,
}

/// Fitted prefill model `a·I_pad² + b·I_pad + c` (Eqn. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefillLatencyModel {
    /// Quadratic coefficient (attention).
    pub a: f64,
    /// Linear coefficient (projections/FFN).
    pub b: f64,
    /// Constant (weight-read floor, launch overheads).
    pub c: f64,
}

impl PrefillLatencyModel {
    /// Predicted prefill latency for `i` input tokens, seconds.
    pub fn predict(&self, i: usize) -> f64 {
        let ip = pad_input(i);
        self.a * ip * ip + self.b * ip + self.c
    }

    /// Fits the model from `(input_tokens, latency)` pairs. Following the
    /// paper, only samples whose length is a multiple of 64 should be
    /// passed (the caller controls the sweep). Returns `None` with fewer
    /// than 3 distinct padded lengths.
    pub fn fit(samples: &[(usize, f64)]) -> Option<Self> {
        let xs: Vec<f64> = samples.iter().map(|&(i, _)| pad_input(i)).collect();
        let ys: Vec<f64> = samples.iter().map(|&(_, l)| l).collect();
        // Relative (1/y²) weighting: absolute least squares would let the
        // multi-second 4k-token points swamp the fit and leave double-digit
        // percentage errors at the short prompts real questions use.
        let coef = polyfit_weighted(&xs, &ys, 2, |_, y| 1.0 / (y * y).max(1e-12))?;
        Some(Self {
            a: coef[2],
            b: coef[1],
            c: coef[0],
        })
    }

    /// The paper's fitted coefficients (Table IV) for reference.
    pub fn paper_reference(model: ModelId) -> Option<Self> {
        match model {
            ModelId::Dsr1Qwen1_5b => Some(Self {
                a: 1.56e-7,
                b: 2.31e-6,
                c: 0.046,
            }),
            ModelId::Dsr1Llama8b => Some(Self {
                a: 6.65e-7,
                b: 2.90e-4,
                c: 0.104,
            }),
            ModelId::Dsr1Qwen14b => Some(Self {
                a: 1.23e-6,
                b: 5.3e-4,
                c: 0.189,
            }),
            _ => None,
        }
    }
}

/// Fitted decode model `n·O + m·(I·O + O(O−1)/2)` (Eqn. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodeLatencyModel {
    /// Per-context-token TBT slope (KV-cache growth), seconds.
    pub m: f64,
    /// Context-independent time between tokens, seconds.
    pub n: f64,
}

impl DecodeLatencyModel {
    /// Predicted decode latency for `o` output tokens after `i` input
    /// tokens, seconds.
    pub fn predict(&self, i: usize, o: usize) -> f64 {
        let (i, o) = (i as f64, o as f64);
        self.n * o + self.m * (i * o + o * (o - 1.0) / 2.0)
    }

    /// Time between tokens at a given context length.
    pub fn tbt(&self, ctx: usize) -> f64 {
        self.n + self.m * ctx as f64
    }

    /// Fits `(m, n)` by least squares over measured generations (the model
    /// is linear in both parameters). Returns `None` with fewer than 2
    /// samples or degenerate features.
    pub fn fit(samples: &[LatencySample]) -> Option<Self> {
        if samples.len() < 2 {
            return None;
        }
        // Allocation-free: the 2-parameter normal equations accumulate
        // directly on the stack (same row values and accumulation order as
        // the previous design-matrix path, so fits are bit-identical).
        let beta = least_squares_fixed(samples.iter().map(|s| {
            let i = s.input_tokens as f64;
            let o = s.output_tokens as f64;
            ([i * o + o * (o - 1.0) / 2.0, o], s.latency_s)
        }))?;
        Some(Self {
            m: beta[0],
            n: beta[1],
        })
    }

    /// The paper's fitted coefficients (Table V) for reference.
    pub fn paper_reference(model: ModelId) -> Option<Self> {
        match model {
            ModelId::Dsr1Qwen1_5b => Some(Self {
                m: -1.50e-7,
                n: 0.024,
            }),
            ModelId::Dsr1Llama8b => Some(Self {
                m: 6.92e-7,
                n: 0.092,
            }),
            ModelId::Dsr1Qwen14b => Some(Self {
                m: 1.13e-6,
                n: 0.187,
            }),
            _ => None,
        }
    }
}

/// Total latency model (Eqn. 3): prefill + decode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TotalLatencyModel {
    /// Prefill component.
    pub prefill: PrefillLatencyModel,
    /// Decode component.
    pub decode: DecodeLatencyModel,
}

impl TotalLatencyModel {
    /// Predicted end-to-end latency, seconds.
    pub fn predict(&self, input_tokens: usize, output_tokens: usize) -> f64 {
        self.prefill.predict(input_tokens) + self.decode.predict(input_tokens, output_tokens)
    }

    /// The largest output-token budget that fits a latency target with the
    /// given prompt length (inverts the decode quadratic; 0 when even the
    /// prefill alone exceeds the budget). This is the hardware-aware
    /// budget→tokens mapping of takeaway #6.
    pub fn max_output_tokens(&self, input_tokens: usize, latency_budget_s: f64) -> usize {
        let remaining = latency_budget_s - self.prefill.predict(input_tokens);
        if remaining <= 0.0 {
            return 0;
        }
        // Solve m/2·O² + (n + m·I − m/2)·O − remaining = 0 for O.
        let i = input_tokens as f64;
        let a = self.decode.m / 2.0;
        let b = self.decode.n + self.decode.m * i - self.decode.m / 2.0;
        let c = -remaining;
        let o = if a.abs() < 1e-15 {
            if b <= 0.0 {
                return 0;
            }
            -c / b
        } else {
            let disc = b * b - 4.0 * a * c;
            if disc < 0.0 {
                return 0;
            }
            (-b + disc.sqrt()) / (2.0 * a)
        };
        o.max(0.0).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TotalLatencyModel {
        TotalLatencyModel {
            prefill: PrefillLatencyModel::paper_reference(ModelId::Dsr1Llama8b).unwrap(),
            decode: DecodeLatencyModel::paper_reference(ModelId::Dsr1Llama8b).unwrap(),
        }
    }

    #[test]
    fn padding_matches_paper_definition() {
        assert_eq!(pad_input(1), 128.0);
        assert_eq!(pad_input(128), 128.0);
        assert_eq!(pad_input(129), 256.0);
    }

    #[test]
    fn prefill_steps_are_flat_within_a_tile() {
        let m = model().prefill;
        assert_eq!(m.predict(129), m.predict(256));
        assert!(m.predict(129) > m.predict(128));
    }

    #[test]
    fn decode_closed_form_matches_tbt_sum() {
        let d = model().decode;
        let (i, o) = (512usize, 300usize);
        let sum: f64 = (0..o).map(|k| d.tbt(i + k)).sum();
        assert!((d.predict(i, o) - sum).abs() < 1e-9);
    }

    #[test]
    fn prefill_fit_recovers_known_coefficients() {
        let truth = PrefillLatencyModel {
            a: 6.65e-7,
            b: 2.9e-4,
            c: 0.104,
        };
        let samples: Vec<(usize, f64)> = (1..=32)
            .map(|k| (k * 128, truth.predict(k * 128)))
            .collect();
        let fitted = PrefillLatencyModel::fit(&samples).unwrap();
        assert!((fitted.a - truth.a).abs() / truth.a < 1e-6);
        assert!((fitted.b - truth.b).abs() / truth.b < 1e-6);
        assert!((fitted.c - truth.c).abs() / truth.c < 1e-6);
    }

    #[test]
    fn decode_fit_recovers_known_coefficients() {
        let truth = DecodeLatencyModel {
            m: 6.92e-7,
            n: 0.092,
        };
        let samples: Vec<LatencySample> = (1..=40)
            .map(|k| {
                let i = 64 * k;
                let o = 32 * k;
                LatencySample {
                    input_tokens: i,
                    output_tokens: o,
                    latency_s: truth.predict(i, o),
                }
            })
            .collect();
        let fitted = DecodeLatencyModel::fit(&samples).unwrap();
        assert!((fitted.m - truth.m).abs() / truth.m < 1e-6);
        assert!((fitted.n - truth.n).abs() / truth.n < 1e-6);
    }

    #[test]
    fn budget_inversion_round_trips() {
        let m = model();
        for budget in [5.0, 10.0, 30.0, 120.0] {
            let o = m.max_output_tokens(512, budget);
            assert!(o > 0, "budget {budget}s must admit tokens");
            assert!(m.predict(512, o) <= budget + 1e-9);
            assert!(
                m.predict(512, o + 1) > budget,
                "budget {budget}: O={o} is not maximal"
            );
        }
    }

    #[test]
    fn budget_smaller_than_prefill_admits_zero() {
        let m = model();
        assert_eq!(m.max_output_tokens(4096, 0.01), 0);
    }

    #[test]
    fn negative_m_inversion_still_works() {
        // The 1.5B model's fitted m is slightly negative (Table V).
        let m = TotalLatencyModel {
            prefill: PrefillLatencyModel::paper_reference(ModelId::Dsr1Qwen1_5b).unwrap(),
            decode: DecodeLatencyModel::paper_reference(ModelId::Dsr1Qwen1_5b).unwrap(),
        };
        let o = m.max_output_tokens(512, 10.0);
        assert!(o > 300 && o < 500, "~417 tokens fit in 10 s, got {o}");
    }

    #[test]
    fn paper_reference_only_for_dsr1() {
        assert!(PrefillLatencyModel::paper_reference(ModelId::Gemma7bIt).is_none());
        assert!(DecodeLatencyModel::paper_reference(ModelId::L1Max).is_none());
    }
}
