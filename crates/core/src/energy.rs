//! The paper's analytical power and energy models (§IV-B, Eqns. 4–6 and
//! Appendix E Tables XX–XXIII).
//!
//! Power follows a piecewise constant-then-logarithmic form in sequence
//! length; energy-per-token follows exponential decay (overhead
//! amortization) transitioning to logarithmic growth.

use edgereasoning_kernels::arch::ModelId;
use serde::{Deserialize, Serialize};

use crate::fit::{fit_const_log, fit_exp_log, PiecewiseConstLog, PiecewiseExpLog};

/// Fitted phase power model `P(x)` in watts vs sequence length (Eqn. 4/6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhasePowerModel {
    /// Constant draw below the transition, watts.
    pub u: f64,
    /// Transition sequence length, tokens.
    pub v: f64,
    /// Log slope above the transition.
    pub w: f64,
    /// Log intercept above the transition.
    pub z: f64,
}

impl PhasePowerModel {
    /// Predicted average power at sequence length `x`, watts.
    pub fn predict(&self, x: f64) -> f64 {
        if x <= self.v {
            self.u
        } else {
            self.w * x.ln() + self.z
        }
    }

    /// Fits from `(sequence_length, watts)` samples.
    pub fn fit(samples: &[(f64, f64)]) -> Option<Self> {
        let xs: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.1).collect();
        let PiecewiseConstLog { u, v, w, z } = fit_const_log(&xs, &ys)?;
        Some(Self { u, v, w, z })
    }

    /// The paper's decode power reference (Table XXI, FP16 models):
    /// `P = α·ln O + β`.
    pub fn paper_decode_reference(model: ModelId) -> Option<Self> {
        let (alpha, beta) = match model {
            ModelId::Dsr1Qwen1_5b => (0.756_538, 3.213_711),
            ModelId::Dsr1Llama8b => (8.806_744, 2.701_709),
            ModelId::Dsr1Qwen14b => (16.886_830, 1.619_387),
            _ => return None,
        };
        Some(Self {
            u: 5.9,
            v: 64.0,
            w: alpha,
            z: beta,
        })
    }
}

/// Fitted energy-per-token model (Eqn. 5): exponential decay then log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyPerTokenModel {
    /// Underlying piecewise fit.
    pub piecewise: PiecewiseExpLog,
}

impl EnergyPerTokenModel {
    /// Predicted energy per token at sequence length `x`, joules.
    pub fn predict(&self, x: f64) -> f64 {
        self.piecewise.predict(x)
    }

    /// Fits from `(sequence_length, joules_per_token)` samples.
    pub fn fit(samples: &[(f64, f64)]) -> Option<Self> {
        let xs: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.1).collect();
        fit_exp_log(&xs, &ys).map(|piecewise| Self { piecewise })
    }

    /// The paper's prefill energy reference (Table XX, FP16 models).
    pub fn paper_prefill_reference(model: ModelId) -> Option<Self> {
        let piecewise = match model {
            ModelId::Dsr1Qwen1_5b => PiecewiseExpLog {
                a: 0.073_08,
                lambda: 0.031_95,
                c: 0.000_923,
                v: f64::INFINITY,
                alpha: 0.0,
                beta: 0.000_923,
            },
            ModelId::Dsr1Llama8b => PiecewiseExpLog {
                a: 0.158_71,
                lambda: 0.032_40,
                c: 0.005_53,
                v: 640.0,
                alpha: 0.012_33,
                beta: -0.073_49,
            },
            ModelId::Dsr1Qwen14b => PiecewiseExpLog {
                a: 0.293_27,
                lambda: 0.030_58,
                c: 0.009_234,
                v: 384.0,
                alpha: 0.016_05,
                beta: -0.076_43,
            },
            _ => return None,
        };
        Some(Self { piecewise })
    }
}

/// Total-energy estimate for one generation from phase power models and a
/// latency model: `E = P_prefill·L_prefill + P_decode·L_decode` (the
/// discrete form of the paper's `∫P dt`).
pub fn total_energy_j(
    prefill_power: &PhasePowerModel,
    decode_power: &PhasePowerModel,
    prefill_latency_s: f64,
    decode_latency_s: f64,
    input_tokens: usize,
    output_tokens: usize,
) -> f64 {
    prefill_power.predict(input_tokens as f64) * prefill_latency_s
        + decode_power.predict(output_tokens as f64) * decode_latency_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_fit_recovers_const_log() {
        let truth = PhasePowerModel {
            u: 5.9,
            v: 200.0,
            w: 3.2,
            z: -1.0,
        };
        let samples: Vec<(f64, f64)> = (1..=60)
            .map(|k| (k as f64 * 32.0, truth.predict(k as f64 * 32.0)))
            .collect();
        let fitted = PhasePowerModel::fit(&samples).unwrap();
        for x in [64.0, 128.0, 512.0, 1600.0] {
            let rel = ((fitted.predict(x) - truth.predict(x)) / truth.predict(x)).abs();
            assert!(rel < 0.05, "x={x}: rel err {rel}");
        }
    }

    #[test]
    fn paper_decode_power_reference_values() {
        let p = PhasePowerModel::paper_decode_reference(ModelId::Dsr1Qwen14b).unwrap();
        // 16.9·ln(512) + 1.6 ≈ 107 W... the paper's table is in different
        // units at face value; the model is exposed as published.
        assert!(p.predict(32.0) == 5.9, "below-64 draw is the 5.9 W floor");
        assert!(p.predict(128.0) > p.predict(65.0));
    }

    #[test]
    fn energy_fit_round_trip() {
        let truth = EnergyPerTokenModel::paper_prefill_reference(ModelId::Dsr1Llama8b).unwrap();
        let samples: Vec<(f64, f64)> = (1..=64)
            .map(|k| (k as f64 * 64.0, truth.predict(k as f64 * 64.0)))
            .collect();
        let fitted = EnergyPerTokenModel::fit(&samples).unwrap();
        let mape: f64 = samples
            .iter()
            .map(|&(x, y)| ((fitted.predict(x) - y) / y).abs())
            .sum::<f64>()
            / samples.len() as f64;
        assert!(mape < 0.10, "energy fit MAPE {mape}");
    }

    #[test]
    fn prefill_energy_decays_then_grows() {
        let m = EnergyPerTokenModel::paper_prefill_reference(ModelId::Dsr1Qwen14b).unwrap();
        assert!(m.predict(32.0) > m.predict(300.0), "short inputs amortize");
        assert!(m.predict(4000.0) > m.predict(400.0), "long inputs grow");
    }

    #[test]
    fn total_energy_combines_phases() {
        let p = PhasePowerModel {
            u: 10.0,
            v: 1e9,
            w: 0.0,
            z: 0.0,
        };
        let d = PhasePowerModel {
            u: 20.0,
            v: 1e9,
            w: 0.0,
            z: 0.0,
        };
        let e = total_energy_j(&p, &d, 2.0, 3.0, 100, 100);
        assert_eq!(e, 10.0 * 2.0 + 20.0 * 3.0);
    }
}
