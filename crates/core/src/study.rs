//! Deterministic parallel study driver: runs many evaluation cells across
//! worker threads with bit-identical results at every thread count.
//!
//! A paper-scale study (Tables X/XI, Figs. 6–8) evaluates dozens of
//! (model, precision, benchmark, prompt-config) cells, each independent of
//! the others. [`Study`] fans the cells out with
//! [`par_map_deterministic`]: every cell gets its own [`Rig`] whose seed is
//! derived from the study seed and the cell *index* via [`item_seed`] —
//! never from thread identity or completion order — so the report vector
//! is byte-for-byte identical whether the study runs on one thread or
//! sixteen.

use edgereasoning_engine::plan_cache::EngineCounters;
use edgereasoning_kernels::arch::ModelId;
use edgereasoning_kernels::dtype::Precision;
use edgereasoning_models::evaluate::EvalOptions;
use edgereasoning_soc::runtime::{item_seed, par_map_deterministic};
use edgereasoning_workloads::prompt::PromptConfig;
use edgereasoning_workloads::suite::Benchmark;
use serde::{Deserialize, Serialize};

use crate::rig::{CellReport, Rig, RigConfig};

/// One evaluation cell of a study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyCell {
    /// Model to evaluate.
    pub model: ModelId,
    /// Weight precision.
    pub precision: Precision,
    /// Benchmark suite.
    pub bench: Benchmark,
    /// Prompting configuration.
    pub config: PromptConfig,
}

impl StudyCell {
    /// Creates a cell.
    #[must_use]
    pub fn new(
        model: ModelId,
        precision: Precision,
        bench: Benchmark,
        config: PromptConfig,
    ) -> Self {
        Self {
            model,
            precision,
            bench,
            config,
        }
    }
}

/// Result of a study: per-cell reports (in input order) plus engine
/// counters summed over every per-cell rig.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// One report per input cell, in input order.
    pub reports: Vec<CellReport>,
    /// Plan-cache and phase counters aggregated across all cell rigs.
    pub counters: EngineCounters,
}

/// Deterministic parallel study runner.
#[derive(Debug, Clone)]
pub struct Study {
    config: RigConfig,
    threads: usize,
}

impl Study {
    /// Creates a study runner over the given rig configuration, defaulting
    /// to one worker thread (sequential).
    #[must_use]
    pub fn new(config: RigConfig) -> Self {
        Self { config, threads: 1 }
    }

    /// Sets the worker-thread count (0 = all cores), builder-style.
    ///
    /// Results are bit-identical at every value: each cell's rig seed is
    /// [`item_seed`]`(study seed, cell index)`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the underlying rig configuration.
    #[must_use]
    pub fn config(&self) -> &RigConfig {
        &self.config
    }

    /// Evaluates every cell, returning reports in input order plus
    /// aggregated engine counters.
    pub fn run(&self, cells: &[StudyCell], opts: EvalOptions) -> StudyReport {
        let outcomes = par_map_deterministic(cells, self.threads, |idx, cell| {
            let seed = item_seed(self.config.seed, idx as u64);
            let mut rig = Rig::new(self.config.clone().with_seed(seed));
            let report = rig.cell_report(cell.model, cell.precision, cell.bench, cell.config, opts);
            (report, rig.engine_mut().counters())
        });
        let mut counters = EngineCounters::default();
        let mut reports = Vec::with_capacity(outcomes.len());
        for (report, cell_counters) in outcomes {
            counters.absorb(&cell_counters);
            reports.push(report);
        }
        StudyReport { reports, counters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells() -> Vec<StudyCell> {
        vec![
            StudyCell::new(
                ModelId::Dsr1Qwen1_5b,
                Precision::Fp16,
                Benchmark::MmluRedux,
                PromptConfig::Base,
            ),
            StudyCell::new(
                ModelId::Dsr1Qwen1_5b,
                Precision::W4A16,
                Benchmark::MmluRedux,
                PromptConfig::Hard(128),
            ),
            StudyCell::new(
                ModelId::Dsr1Llama8b,
                Precision::Fp16,
                Benchmark::MmluRedux,
                PromptConfig::Soft(256),
            ),
        ]
    }

    #[test]
    fn study_is_thread_count_invariant() {
        let opts = EvalOptions::default().with_subset(80);
        let study = Study::new(RigConfig::default());
        let seq = study.run(&cells(), opts);
        for threads in [0usize, 2, 3] {
            let par = study.clone().with_threads(threads).run(&cells(), opts);
            assert_eq!(
                seq.reports, par.reports,
                "reports differ at {threads} threads"
            );
            assert_eq!(
                seq.counters, par.counters,
                "counters differ at {threads} threads"
            );
        }
    }

    #[test]
    fn study_counters_aggregate_cell_work() {
        let opts = EvalOptions::default().with_subset(40);
        let report = Study::new(RigConfig::default()).run(&cells()[..2], opts);
        assert_eq!(report.reports.len(), 2);
        // Characterization sweeps execute thousands of phases per cell and
        // the plan cache absorbs nearly all of them.
        assert!(report.counters.cache_hits > 0, "{}", report.counters);
        assert!(report.counters.hit_rate() > 0.5, "{}", report.counters);
        assert!(report.counters.prefill_phases > 0);
        assert!(report.counters.decode_ctx_phases > 0);
    }
}
