//! # edgereasoning-core
//!
//! The paper's primary contribution, implemented as a library:
//!
//! * [`fit`] — from-scratch least squares, log/exponential and piecewise
//!   fitting (normal equations + transition search).
//! * [`latency`] — the analytical latency models of §IV-A: quadratic
//!   128-padded prefill (Eqn. 1), closed-form decode (Eqn. 2), their sum
//!   (Eqn. 3) and its inversion into token budgets.
//! * [`energy`] — the §IV-B power/energy models: piecewise const+log
//!   power (Eqns. 4/6) and exp-decay+log energy-per-token (Eqn. 5), with
//!   the paper's published coefficients embedded for comparison.
//! * [`cost`] — the §III-B edge-deployment cost model ($/1M tokens from
//!   electricity + amortized hardware; Table III).
//! * [`rig`] — the characterization rig that sweeps the simulated Orin,
//!   fits the models, validates MAPE (Table VI) and produces full
//!   accuracy/latency/energy/cost cell reports (Tables X/XI).
//! * [`planner`] — Pareto frontiers, latency-regime analysis, and
//!   budget-aware planning with token-adherent models (takeaway #6).
//! * [`study`] — deterministic parallel study driver: fans evaluation
//!   cells out across threads with per-cell seeds derived from the cell
//!   index, so results are bit-identical at every thread count.
//!
//! # Example
//!
//! ```
//! use edgereasoning_core::rig::{Rig, RigConfig};
//! use edgereasoning_kernels::arch::ModelId;
//! use edgereasoning_kernels::dtype::Precision;
//!
//! let mut rig = Rig::new(RigConfig::default());
//! let fitted = rig.characterize_latency(ModelId::Dsr1Llama8b, Precision::Fp16);
//! // Fitted TBT ≈ the paper's 0.092 s (Table V).
//! assert!((fitted.decode.n / 0.092 - 1.0).abs() < 0.2);
//! // Invert: how many tokens fit in 10 s after a 512-token prompt?
//! let budget = fitted.max_output_tokens(512, 10.0);
//! assert!(budget > 50 && budget < 150);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Model fitting feeds the planner and the study driver: misuse must
// surface as typed errors or explicit fallbacks, never as panics (tests
// keep their expect/unwrap for brevity).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cost;
pub mod energy;
pub mod fit;
pub mod latency;
pub mod offload;
pub mod planner;
pub mod rig;
pub mod speculative;
pub mod study;

pub use cost::{CloudPricing, CostBreakdown, CostModel};
pub use energy::{EnergyPerTokenModel, PhasePowerModel};
pub use latency::{DecodeLatencyModel, LatencySample, PrefillLatencyModel, TotalLatencyModel};
pub use planner::{pareto_frontier, ConfigPoint, Planner};
pub use rig::{CellReport, MapeReport, Rig, RigConfig};
pub use speculative::SpeculativeConfig;
pub use study::{Study, StudyCell, StudyReport};
