//! Deployment planning: Pareto frontiers over (latency, accuracy, cost)
//! and latency-constrained configuration selection — the paper's synthesis
//! (Figs. 1 and 6–8, takeaways #4/#6/#8).

use edgereasoning_kernels::arch::ModelId;
use edgereasoning_kernels::dtype::Precision;
use edgereasoning_models::predict::expected_accuracy;
use edgereasoning_workloads::prompt::PromptConfig;
use edgereasoning_workloads::suite::Benchmark;
use serde::{Deserialize, Serialize};

use crate::latency::TotalLatencyModel;

/// One evaluated deployment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigPoint {
    /// Model.
    pub model: ModelId,
    /// Weight precision.
    pub precision: Precision,
    /// Prompting configuration.
    pub config: PromptConfig,
    /// Parallel scaling factor.
    pub parallel: usize,
    /// Accuracy, percent.
    pub accuracy_pct: f64,
    /// Average latency per question, seconds.
    pub latency_s: f64,
    /// Cost, $ per million tokens.
    pub cost_per_mtok: f64,
    /// Average generated tokens per question (per sequence).
    pub avg_tokens: f64,
}

/// Extracts the Pareto-optimal subset minimizing `x` while maximizing `y`.
/// Returned in increasing `x`. Ties on `x` keep only the best `y`.
pub fn pareto_frontier<T, FX, FY>(points: &[T], x: FX, y: FY) -> Vec<usize>
where
    FX: Fn(&T) -> f64,
    FY: Fn(&T) -> f64,
{
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&i, &j| {
        x(&points[i])
            .total_cmp(&x(&points[j]))
            .then(y(&points[j]).total_cmp(&y(&points[i])))
    });
    let mut frontier = Vec::new();
    let mut best_y = f64::NEG_INFINITY;
    for i in idx {
        let yi = y(&points[i]);
        if yi > best_y {
            frontier.push(i);
            best_y = yi;
        }
    }
    frontier
}

/// A deployment planner over a set of evaluated configurations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Planner {
    points: Vec<ConfigPoint>,
}

impl Planner {
    /// Creates a planner from evaluated configuration points.
    pub fn new(points: Vec<ConfigPoint>) -> Self {
        Self { points }
    }

    /// All points.
    pub fn points(&self) -> &[ConfigPoint] {
        &self.points
    }

    /// Adds a point.
    pub fn push(&mut self, p: ConfigPoint) {
        self.points.push(p);
    }

    /// The latency–accuracy Pareto frontier, in increasing latency.
    pub fn latency_frontier(&self) -> Vec<&ConfigPoint> {
        pareto_frontier(&self.points, |p| p.latency_s, |p| p.accuracy_pct)
            .into_iter()
            .map(|i| &self.points[i])
            .collect()
    }

    /// The cost–accuracy Pareto frontier, in increasing cost.
    pub fn cost_frontier(&self) -> Vec<&ConfigPoint> {
        pareto_frontier(&self.points, |p| p.cost_per_mtok, |p| p.accuracy_pct)
            .into_iter()
            .map(|i| &self.points[i])
            .collect()
    }

    /// The most accurate configuration meeting a latency budget.
    pub fn best_under_latency(&self, budget_s: f64) -> Option<&ConfigPoint> {
        self.points
            .iter()
            .filter(|p| p.latency_s <= budget_s)
            .max_by(|a, b| a.accuracy_pct.total_cmp(&b.accuracy_pct))
    }

    /// The most accurate configuration meeting a cost budget ($/1M tok).
    pub fn best_under_cost(&self, budget: f64) -> Option<&ConfigPoint> {
        self.points
            .iter()
            .filter(|p| p.cost_per_mtok <= budget)
            .max_by(|a, b| a.accuracy_pct.total_cmp(&b.accuracy_pct))
    }

    /// Describes the operational regimes along the latency frontier: for
    /// each frontier point, the latency span over which its model family
    /// is optimal (the paper's sub-5 s / 15–30 s / >30 s regime analysis).
    pub fn regimes(&self) -> Vec<(f64, f64, ConfigPoint)> {
        let frontier = self.latency_frontier();
        let mut out = Vec::new();
        for (k, p) in frontier.iter().enumerate() {
            let start = p.latency_s;
            let end = frontier
                .get(k + 1)
                .map_or(f64::INFINITY, |next| next.latency_s);
            out.push((start, end, **p));
        }
        out
    }
}

/// Budget-aware planning with a token-budget-adherent model (takeaway #6):
/// given a latency target and prompt length, compute the token budget the
/// latency model admits and the accuracy the budget-aware model is
/// predicted to reach with it.
pub fn plan_token_budget(
    latency: &TotalLatencyModel,
    model: ModelId,
    precision: Precision,
    bench: Benchmark,
    input_tokens: usize,
    latency_target_s: f64,
) -> Option<(u32, f64)> {
    let budget = latency.max_output_tokens(input_tokens, latency_target_s);
    if budget == 0 {
        return None;
    }
    let budget = u32::try_from(budget).ok()?;
    let acc = 100.0 * expected_accuracy(model, precision, bench, PromptConfig::Hard(budget));
    Some((budget, acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(latency: f64, acc: f64, cost: f64) -> ConfigPoint {
        ConfigPoint {
            model: ModelId::Dsr1Qwen1_5b,
            precision: Precision::Fp16,
            config: PromptConfig::Base,
            parallel: 1,
            accuracy_pct: acc,
            latency_s: latency,
            cost_per_mtok: cost,
            avg_tokens: 100.0,
        }
    }

    #[test]
    fn frontier_drops_dominated_points() {
        let pts = vec![
            pt(1.0, 30.0, 0.01),
            pt(2.0, 25.0, 0.02), // dominated: slower and less accurate
            pt(3.0, 50.0, 0.05),
            pt(10.0, 80.0, 0.2),
            pt(9.0, 80.0, 0.3), // same accuracy, faster -> keeps this one
        ];
        let f = Planner::new(pts).latency_frontier().len();
        assert_eq!(f, 3);
    }

    #[test]
    fn frontier_is_monotone() {
        let pts: Vec<ConfigPoint> = (0..50)
            .map(|i| pt((i % 10) as f64 + 1.0, (i * 7 % 90) as f64, 0.01 * i as f64))
            .collect();
        let planner = Planner::new(pts);
        let f = planner.latency_frontier();
        for w in f.windows(2) {
            assert!(w[1].latency_s > w[0].latency_s);
            assert!(w[1].accuracy_pct > w[0].accuracy_pct);
        }
    }

    #[test]
    fn best_under_budget_selection() {
        let planner = Planner::new(vec![
            pt(1.0, 30.0, 0.01),
            pt(5.0, 60.0, 0.1),
            pt(50.0, 80.0, 0.2),
        ]);
        assert_eq!(planner.best_under_latency(10.0).unwrap().accuracy_pct, 60.0);
        assert!(planner.best_under_latency(0.5).is_none());
        assert_eq!(planner.best_under_cost(0.05).unwrap().accuracy_pct, 30.0);
    }

    #[test]
    fn regimes_cover_the_axis() {
        let planner = Planner::new(vec![
            pt(1.0, 30.0, 0.01),
            pt(5.0, 60.0, 0.1),
            pt(50.0, 80.0, 0.2),
        ]);
        let regimes = planner.regimes();
        assert_eq!(regimes.len(), 3);
        assert_eq!(regimes[0].1, regimes[1].0);
        assert!(regimes[2].1.is_infinite());
    }

    #[test]
    fn token_budget_planning_round_trip() {
        use crate::latency::{DecodeLatencyModel, PrefillLatencyModel};
        let latency = TotalLatencyModel {
            prefill: PrefillLatencyModel::paper_reference(ModelId::Dsr1Qwen1_5b).unwrap(),
            decode: DecodeLatencyModel::paper_reference(ModelId::Dsr1Qwen1_5b).unwrap(),
        };
        let (budget, acc) = plan_token_budget(
            &latency,
            ModelId::L1Max,
            Precision::Fp16,
            Benchmark::MmluRedux,
            256,
            5.0,
        )
        .expect("5 s admits a budget");
        assert!(budget > 100, "5 s admits >100 tokens on the 1.5B: {budget}");
        assert!(acc > 10.0 && acc < 60.0, "predicted accuracy {acc}");
        // Tighter budgets shrink.
        let (b2, _) = plan_token_budget(
            &latency,
            ModelId::L1Max,
            Precision::Fp16,
            Benchmark::MmluRedux,
            256,
            1.0,
        )
        .unwrap();
        assert!(b2 < budget);
    }
}
