//! The characterization rig: drives the simulated Orin exactly the way the
//! paper drives the real one, producing measurement sweeps, fitted
//! analytical models, validation MAPEs and full evaluation-cell reports.

use std::collections::HashMap;

use edgereasoning_engine::engine::{EngineConfig, InferenceEngine};
use edgereasoning_engine::outcome::InferenceOutcome;
use edgereasoning_engine::request::GenerationRequest;
use edgereasoning_engine::EngineError;
use edgereasoning_kernels::arch::ModelId;
use edgereasoning_kernels::dtype::Precision;
use edgereasoning_models::evaluate::{evaluate, EvalOptions, EvalResult};
use edgereasoning_models::profile::output_profile;
use edgereasoning_soc::gpu::PhaseStats;
use edgereasoning_soc::rng::Rng;
use edgereasoning_soc::stats;
use edgereasoning_workloads::prompt::PromptConfig;
use edgereasoning_workloads::suite::Benchmark;
use serde::{Deserialize, Serialize};

use crate::cost::{CostBreakdown, CostModel};
use crate::energy::{EnergyPerTokenModel, PhasePowerModel};
use crate::latency::{DecodeLatencyModel, LatencySample, PrefillLatencyModel, TotalLatencyModel};

/// Rig configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RigConfig {
    /// Master seed for simulation noise and workload sampling.
    pub seed: u64,
    /// Engine profile (vLLM on a Jetson AGX Orin in MAXN by default).
    pub engine: EngineConfig,
    /// Cost-model rates.
    pub cost: CostModel,
}

impl Default for RigConfig {
    fn default() -> Self {
        Self {
            seed: 0xed9e,
            engine: EngineConfig::vllm(),
            cost: CostModel::default(),
        }
    }
}

impl RigConfig {
    /// Sets the master seed, builder-style.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the engine profile, builder-style.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

/// Latency-model validation errors (the paper's Table VI).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapeReport {
    /// Prefill MAPE, percent.
    pub prefill_pct: f64,
    /// Decode MAPE, percent.
    pub decode_pct: f64,
    /// Total MAPE, percent.
    pub total_pct: f64,
}

/// A full evaluation cell: accuracy + latency + energy + cost (one row of
/// the paper's Tables X/XI-style reports).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Model evaluated.
    pub model: ModelId,
    /// Weight precision.
    pub precision: Precision,
    /// Benchmark.
    pub bench: Benchmark,
    /// Prompting configuration.
    pub config: PromptConfig,
    /// Accuracy/token statistics from the behavioural evaluation.
    pub eval: EvalResult,
    /// Average end-to-end latency per question, seconds (fitted models).
    pub avg_latency_s: f64,
    /// Average energy per question, joules.
    pub avg_energy_j: f64,
    /// Deployment cost, $ per million generated tokens.
    pub cost: CostBreakdown,
}

/// The characterization rig.
#[derive(Debug)]
pub struct Rig {
    config: RigConfig,
    engine: InferenceEngine,
    latency_cache: HashMap<(ModelId, Precision), TotalLatencyModel>,
    power_cache: HashMap<(ModelId, Precision), (PhasePowerModel, PhasePowerModel)>,
    energy_cache: HashMap<(ModelId, Precision), (EnergyPerTokenModel, EnergyPerTokenModel)>,
}

impl Rig {
    /// Creates a rig.
    pub fn new(config: RigConfig) -> Self {
        let engine = InferenceEngine::new(config.engine.clone(), config.seed);
        Self {
            config,
            engine,
            latency_cache: HashMap::new(),
            power_cache: HashMap::new(),
            energy_cache: HashMap::new(),
        }
    }

    /// Returns the rig configuration.
    pub fn config(&self) -> &RigConfig {
        &self.config
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut InferenceEngine {
        &mut self.engine
    }

    /// Installs a platform-disturbance schedule on the underlying engine
    /// (see `edgereasoning_soc::faults`). Note that the fitted-model caches
    /// are keyed per (model, precision) only: install the schedule *before*
    /// characterizing, or the cached fits will describe the clean device.
    pub fn set_fault_schedule(&mut self, schedule: edgereasoning_soc::faults::FaultSchedule) {
        self.engine.set_fault_schedule(schedule);
    }

    /// Runs one generation on the simulated device.
    ///
    /// # Panics
    ///
    /// Panics if the request does not fit device memory; use
    /// [`Rig::try_run_generation`] to handle that case.
    // Documented '# Panics' contract: these expects are the API surface,
    // not accidental panics; misuse is caught loudly at the call site.
    #[allow(clippy::expect_used)]
    pub fn run_generation(
        &mut self,
        model: ModelId,
        prec: Precision,
        req: &GenerationRequest,
    ) -> InferenceOutcome {
        self.try_run_generation(model, prec, req)
            .expect("request does not fit on the device")
    }

    /// Runs one generation, surfacing engine errors.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] (OOM / invalid request).
    pub fn try_run_generation(
        &mut self,
        model: ModelId,
        prec: Precision,
        req: &GenerationRequest,
    ) -> Result<InferenceOutcome, EngineError> {
        self.engine.run(model, prec, req)
    }

    /// Prefill sweep: measured `(input_tokens, PhaseStats)` over the given
    /// lengths (Fig. 2 / Fig. 4 raw data).
    pub fn sweep_prefill(
        &mut self,
        model: ModelId,
        prec: Precision,
        lengths: &[usize],
    ) -> Vec<(usize, PhaseStats)> {
        lengths
            .iter()
            .map(|&i| (i, self.engine.run_prefill(model, prec, i)))
            .collect()
    }

    /// Decode sweep at fixed input length: measured `(output_tokens,
    /// PhaseStats)` per output length (Fig. 3a / Fig. 5 raw data).
    ///
    /// # Panics
    ///
    /// Panics if a sweep point does not fit device memory; use
    /// [`Rig::try_sweep_decode`] to handle that case.
    // Documented '# Panics' contract: these expects are the API surface,
    // not accidental panics; misuse is caught loudly at the call site.
    #[allow(clippy::expect_used)]
    pub fn sweep_decode(
        &mut self,
        model: ModelId,
        prec: Precision,
        input_tokens: usize,
        outputs: &[usize],
    ) -> Vec<(usize, PhaseStats)> {
        self.try_sweep_decode(model, prec, input_tokens, outputs)
            .expect("sweep request fits")
    }

    /// Decode sweep surfacing engine errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`] hit by a sweep point (e.g. OOM
    /// on a tight memory budget).
    pub fn try_sweep_decode(
        &mut self,
        model: ModelId,
        prec: Precision,
        input_tokens: usize,
        outputs: &[usize],
    ) -> Result<Vec<(usize, PhaseStats)>, EngineError> {
        outputs
            .iter()
            .map(|&o| {
                let req = GenerationRequest::new(input_tokens, o);
                self.engine.run(model, prec, &req).map(|o2| (o, o2.decode))
            })
            .collect()
    }

    /// TBT probe across context lengths (Fig. 3b raw data).
    pub fn sweep_tbt(
        &mut self,
        model: ModelId,
        prec: Precision,
        contexts: &[usize],
    ) -> Vec<(usize, f64)> {
        contexts
            .iter()
            .map(|&ctx| (ctx, self.engine.probe_tbt(model, prec, 1, ctx).latency_s))
            .collect()
    }

    /// Characterizes and fits the total latency model for a model, exactly
    /// following §IV-A: prefill sweep on multiples of 64 up to 4k, decode
    /// fit over ~100 mixed input/output points. Cached per (model, prec).
    ///
    /// # Panics
    ///
    /// Panics if a sweep point does not fit device memory (the standard
    /// grids fit every supported model at the default budget).
    // Documented '# Panics' contract: these expects are the API surface,
    // not accidental panics; misuse is caught loudly at the call site.
    #[allow(clippy::expect_used)]
    pub fn characterize_latency(&mut self, model: ModelId, prec: Precision) -> TotalLatencyModel {
        if let Some(m) = self.latency_cache.get(&(model, prec)) {
            return *m;
        }
        // Prefill: multiples of 64 from 64 to 4096 (the paper restricts
        // fitting to multiple-of-64 points to sidestep padding artifacts).
        let lengths: Vec<usize> = (1..=64).map(|k| k * 64).collect();
        let prefill_samples: Vec<(usize, f64)> = self
            .sweep_prefill(model, prec, &lengths)
            .into_iter()
            .map(|(i, p)| (i, p.latency_s))
            .collect();
        let prefill = PrefillLatencyModel::fit(&prefill_samples).expect("prefill fit");

        // Decode: ~100 (I, O) combinations mirroring MMLU-Redux lengths.
        let mut samples = Vec::new();
        for &i in &[64usize, 128, 256, 512, 1024, 2048] {
            for &o in &[32usize, 64, 128, 256, 512, 1024] {
                let outcome = self
                    .engine
                    .run(model, prec, &GenerationRequest::new(i, o))
                    .expect("fits");
                samples.push(LatencySample {
                    input_tokens: i,
                    output_tokens: o,
                    latency_s: outcome.decode.latency_s,
                });
            }
        }
        let decode = DecodeLatencyModel::fit(&samples).expect("decode fit");
        let total = TotalLatencyModel { prefill, decode };
        self.latency_cache.insert((model, prec), total);
        total
    }

    /// Characterizes and fits phase power models (prefill power vs input
    /// length, decode power vs output length at I=512 — Figs. 4a/5a).
    ///
    /// # Panics
    ///
    /// Panics if a sweep point does not fit device memory.
    // Documented '# Panics' contract: these expects are the API surface,
    // not accidental panics; misuse is caught loudly at the call site.
    #[allow(clippy::expect_used)]
    pub fn characterize_power(
        &mut self,
        model: ModelId,
        prec: Precision,
    ) -> (PhasePowerModel, PhasePowerModel) {
        if let Some(m) = self.power_cache.get(&(model, prec)) {
            return *m;
        }
        let lengths: Vec<usize> = (1..=32).map(|k| k * 128).collect();
        let prefill_samples: Vec<(f64, f64)> = self
            .sweep_prefill(model, prec, &lengths)
            .into_iter()
            .map(|(i, p)| (i as f64, p.avg_power_w))
            .collect();
        let prefill = PhasePowerModel::fit(&prefill_samples).expect("prefill power fit");

        let outputs: Vec<usize> = (1..=24).map(|k| k * 64).collect();
        let decode_samples: Vec<(f64, f64)> = self
            .sweep_decode(model, prec, 512, &outputs)
            .into_iter()
            .map(|(o, p)| (o as f64, p.avg_power_w))
            .collect();
        let decode = PhasePowerModel::fit(&decode_samples).expect("decode power fit");
        let pair = (prefill, decode);
        self.power_cache.insert((model, prec), pair);
        pair
    }

    /// Characterizes energy-per-token models for both phases (Figs. 4b/5b).
    /// Cached per (model, prec) like the latency and power models.
    ///
    /// # Panics
    ///
    /// Panics if a sweep point does not fit device memory.
    // Documented '# Panics' contract: these expects are the API surface,
    // not accidental panics; misuse is caught loudly at the call site.
    #[allow(clippy::expect_used)]
    pub fn characterize_energy(
        &mut self,
        model: ModelId,
        prec: Precision,
    ) -> (EnergyPerTokenModel, EnergyPerTokenModel) {
        if let Some(m) = self.energy_cache.get(&(model, prec)) {
            return *m;
        }
        let lengths: Vec<usize> = (1..=32).map(|k| k * 128).collect();
        let prefill_samples: Vec<(f64, f64)> = self
            .sweep_prefill(model, prec, &lengths)
            .into_iter()
            .map(|(i, p)| (i as f64, p.energy_j / i as f64))
            .collect();
        let prefill = EnergyPerTokenModel::fit(&prefill_samples).expect("prefill energy fit");

        let outputs: Vec<usize> = (1..=24).map(|k| k * 64).collect();
        let decode_samples: Vec<(f64, f64)> = self
            .sweep_decode(model, prec, 512, &outputs)
            .into_iter()
            .map(|(o, p)| (o as f64, p.energy_j / o as f64))
            .collect();
        let decode = EnergyPerTokenModel::fit(&decode_samples).expect("decode energy fit");
        let pair = (prefill, decode);
        self.energy_cache.insert((model, prec), pair);
        pair
    }

    /// Validates a fitted latency model on held-out generations whose
    /// input/output lengths are drawn from a benchmark cell (the paper's
    /// 50-question MMLU-Redux hold-out, Table VI).
    ///
    /// # Panics
    ///
    /// Panics if `holdout` is 0 or a hold-out generation does not fit
    /// device memory.
    // Documented '# Panics' contract: these expects are the API surface,
    // not accidental panics; misuse is caught loudly at the call site.
    #[allow(clippy::expect_used)]
    pub fn validate_latency(
        &mut self,
        model: ModelId,
        prec: Precision,
        holdout: usize,
    ) -> MapeReport {
        let fitted = self.characterize_latency(model, prec);
        let questions = Benchmark::MmluRedux.generate(self.config.seed ^ 0x7e57);
        let profile = output_profile(model, Benchmark::MmluRedux, PromptConfig::Base, prec);
        let mut rng = Rng::seed_from_u64(self.config.seed ^ 0x7057);

        let (mut pre_p, mut pre_a) = (Vec::new(), Vec::new());
        let (mut dec_p, mut dec_a) = (Vec::new(), Vec::new());
        let (mut tot_p, mut tot_a) = (Vec::new(), Vec::new());
        for q in questions.iter().take(holdout) {
            let i = q.prompt_tokens + 24;
            let o = (profile.sample_natural(&mut rng).round() as usize).clamp(8, 4096);
            let outcome = self
                .engine
                .run(model, prec, &GenerationRequest::new(i, o))
                .expect("fits");
            pre_p.push(fitted.prefill.predict(i));
            pre_a.push(outcome.prefill.latency_s);
            dec_p.push(fitted.decode.predict(i, o));
            dec_a.push(outcome.decode.latency_s);
            tot_p.push(fitted.predict(i, o));
            tot_a.push(outcome.prefill.latency_s + outcome.decode.latency_s);
        }
        MapeReport {
            prefill_pct: stats::mape(&pre_p, &pre_a).expect("nonempty"),
            decode_pct: stats::mape(&dec_p, &dec_a).expect("nonempty"),
            total_pct: stats::mape(&tot_p, &tot_a).expect("nonempty"),
        }
    }

    /// Produces a full evaluation-cell report: behavioural accuracy plus
    /// latency/energy/cost from the fitted analytical models — the same
    /// hybrid the paper uses for its dataset-scale tables (measuring every
    /// question on hardware would take days; the fitted models evaluate in
    /// microseconds).
    pub fn cell_report(
        &mut self,
        model: ModelId,
        prec: Precision,
        bench: Benchmark,
        config: PromptConfig,
        opts: EvalOptions,
    ) -> CellReport {
        let eval = evaluate(model, prec, bench, config, opts);
        let latency = self.characterize_latency(model, prec);
        let (p_pre, p_dec) = self.characterize_power(model, prec);

        let i = eval.avg_prompt_tokens.round() as usize;
        // Wall-clock is bounded by the longest parallel sample.
        let o_wall = eval.avg_max_tokens.round().max(1.0) as usize;
        let prefill_s = latency.prefill.predict(i);
        let decode_s = latency.decode.predict(i, o_wall);
        let avg_latency_s = prefill_s + decode_s;

        let energy_j =
            p_pre.predict(i as f64) * prefill_s + p_dec.predict(o_wall as f64) * decode_s;
        // Cost counts all generated tokens across parallel sequences.
        let gen_tokens = eval.avg_tokens_per_seq * opts.parallel as f64;
        let cost = self
            .config
            .cost
            .per_mtok(energy_j, avg_latency_s, gen_tokens.max(1.0));

        CellReport {
            model,
            precision: prec,
            bench,
            config,
            eval,
            avg_latency_s,
            avg_energy_j: energy_j,
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> Rig {
        Rig::new(RigConfig::default())
    }

    #[test]
    fn fitted_tbt_matches_paper_table_v() {
        let mut r = rig();
        let cases = [
            (ModelId::Dsr1Qwen1_5b, 0.024),
            (ModelId::Dsr1Llama8b, 0.092),
            (ModelId::Dsr1Qwen14b, 0.187),
        ];
        for (model, n_paper) in cases {
            let fitted = r.characterize_latency(model, Precision::Fp16);
            let rel = (fitted.decode.n / n_paper - 1.0).abs();
            assert!(
                rel < 0.18,
                "{model}: fitted n = {:.4} vs paper {n_paper} ({:.0}% off)",
                fitted.decode.n,
                rel * 100.0
            );
        }
    }

    #[test]
    fn latency_model_validates_with_low_mape() {
        let mut r = rig();
        let report = r.validate_latency(ModelId::Dsr1Qwen1_5b, Precision::Fp16, 50);
        // The paper reports <2% total MAPE; our simulator adds noise and
        // chunking, so allow a slightly wider band.
        assert!(report.total_pct < 5.0, "total MAPE {}", report.total_pct);
        assert!(report.decode_pct < 5.0, "decode MAPE {}", report.decode_pct);
        // Prefill is the hard part (padding steps): the paper itself sees
        // 7.6-13.4%.
        assert!(
            report.prefill_pct < 20.0,
            "prefill MAPE {}",
            report.prefill_pct
        );
    }

    #[test]
    fn cell_report_latency_close_to_paper_for_base_1_5b() {
        let mut r = rig();
        let report = r.cell_report(
            ModelId::Dsr1Qwen1_5b,
            Precision::Fp16,
            Benchmark::MmluRedux,
            PromptConfig::Base,
            EvalOptions::default().with_subset(400),
        );
        // Table X: 18.92 s average latency, $0.024/1M tokens.
        assert!(
            (report.avg_latency_s / 18.92 - 1.0).abs() < 0.25,
            "latency {} vs 18.92",
            report.avg_latency_s
        );
        // Table X/XI costs are energy-only ("derived from energy
        // measurements"); hardware amortization is reported separately.
        assert!(
            report.cost.energy > 0.01 && report.cost.energy < 0.05,
            "energy cost {}",
            report.cost.energy
        );
    }

    #[test]
    fn characterization_is_cached() {
        let mut r = rig();
        let a = r.characterize_latency(ModelId::Dsr1Qwen1_5b, Precision::Fp16);
        let b = r.characterize_latency(ModelId::Dsr1Qwen1_5b, Precision::Fp16);
        assert_eq!(a, b);
    }

    #[test]
    fn decode_power_model_is_increasing_in_output() {
        let mut r = rig();
        let (_, dec) = r.characterize_power(ModelId::Dsr1Llama8b, Precision::Fp16);
        assert!(dec.predict(1024.0) >= dec.predict(64.0) * 0.95);
        let p = dec.predict(512.0);
        assert!((15.0..32.0).contains(&p), "8B decode power ~24 W, got {p}");
    }
}
