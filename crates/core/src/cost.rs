//! The paper's edge-deployment cost model (§III-B, Table III).
//!
//! `$/1M tokens = (energy_kWh · electricity + wall_hours · amortized_hw)
//!               / tokens · 10⁶`
//!
//! At the paper's rates ($0.15/kWh, $0.045/h for a Jetson AGX Orin
//! amortized over 5 years) the hardware term dominates, which is why
//! batching — more tokens per wall-second — cuts cost by >10×.

use serde::{Deserialize, Serialize};

/// Cost-model rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Electricity price, $ per kWh.
    pub electricity_per_kwh: f64,
    /// Amortized hardware cost, $ per hour.
    pub hardware_per_hour: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            electricity_per_kwh: 0.15,
            hardware_per_hour: 0.045,
        }
    }
}

/// A cost breakdown in $ per million tokens.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Energy component, $/1M tokens.
    pub energy: f64,
    /// Hardware-amortization component, $/1M tokens.
    pub hardware: f64,
}

impl CostBreakdown {
    /// Total $/1M tokens.
    pub fn total(&self) -> f64 {
        self.energy + self.hardware
    }
}

impl CostModel {
    /// Cost of a workload that produced `tokens` tokens in `wall_s`
    /// seconds using `energy_j` joules.
    ///
    /// # Panics
    ///
    /// Panics if `tokens <= 0`.
    pub fn per_mtok(&self, energy_j: f64, wall_s: f64, tokens: f64) -> CostBreakdown {
        assert!(tokens > 0.0, "token count must be positive");
        let kwh = energy_j / 3.6e6;
        let hours = wall_s / 3600.0;
        CostBreakdown {
            energy: kwh * self.electricity_per_kwh / tokens * 1e6,
            hardware: hours * self.hardware_per_hour / tokens * 1e6,
        }
    }

    /// Convenience: cost per million tokens for a single-stream generation
    /// characterized by an average power and tokens/second rate.
    pub fn per_mtok_from_rates(&self, avg_power_w: f64, tokens_per_s: f64) -> CostBreakdown {
        assert!(tokens_per_s > 0.0, "throughput must be positive");
        let seconds_per_mtok = 1e6 / tokens_per_s;
        let energy_j = avg_power_w * seconds_per_mtok;
        self.per_mtok(energy_j, seconds_per_mtok, 1e6)
    }
}

/// Cloud pricing reference for the Table III comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloudPricing {
    /// $ per 1M input tokens.
    pub input_per_mtok: f64,
    /// $ per 1M output tokens.
    pub output_per_mtok: f64,
}

impl CloudPricing {
    /// OpenAI o1-preview list pricing (paper references 26 and 28).
    pub fn o1_preview() -> Self {
        Self {
            input_per_mtok: 15.0,
            output_per_mtok: 60.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces the paper's §III-B arithmetic: 195,624 tokens in 4,358 s
    /// using 0.0317 kWh → $0.302/1M tokens ($0.024 energy + $0.278 hw).
    #[test]
    fn paper_batch1_cost_arithmetic() {
        let cm = CostModel::default();
        let c = cm.per_mtok(0.0317 * 3.6e6, 4358.0, 195_624.0);
        assert!((c.energy - 0.024).abs() < 0.001, "energy {}", c.energy);
        assert!(
            (c.hardware - 0.278).abs() < 0.003,
            "hardware {}",
            c.hardware
        );
        assert!((c.total() - 0.302).abs() < 0.004, "total {}", c.total());
    }

    /// Batch 30: same tokens in 398 s / 0.003 kWh → $0.027/1M.
    #[test]
    fn paper_batch30_cost_arithmetic() {
        let cm = CostModel::default();
        let c = cm.per_mtok(0.003 * 3.6e6, 398.0, 195_624.0);
        assert!((c.total() - 0.027).abs() < 0.002, "total {}", c.total());
    }

    #[test]
    fn hardware_term_dominates_at_edge_rates() {
        let cm = CostModel::default();
        let c = cm.per_mtok_from_rates(25.0, 44.0);
        assert!(c.hardware > c.energy * 5.0);
    }

    #[test]
    fn cloud_is_two_orders_of_magnitude_pricier() {
        let cm = CostModel::default();
        let edge = cm.per_mtok(0.0317 * 3.6e6, 4358.0, 195_624.0).total();
        let cloud = CloudPricing::o1_preview().output_per_mtok;
        assert!(cloud / edge > 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tokens_panics() {
        CostModel::default().per_mtok(1.0, 1.0, 0.0);
    }
}
