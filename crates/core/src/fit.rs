//! Curve-fitting machinery: least squares, log/exponential fits, piecewise
//! models with transition search.
//!
//! Everything the paper's analytical modeling needs (Eqns. 1–6), built on
//! normal equations + Gaussian elimination — no external numerics crates.
//!
//! # The sufficient-statistic fitting engine
//!
//! All models fitted here have ≤ 5 linear parameters, so every normal
//! equation is a tiny fixed-size system. The engine exploits that twice:
//!
//! * **Allocation-free solvers** — [`solve_fixed`] and
//!   [`least_squares_fixed`] run entirely on stack arrays (`[[f64; N]; N]`)
//!   with the same partial-pivoting elimination as the heap-backed
//!   [`solve_linear`], so [`polyfit`], [`logfit`] and [`expfit`] never
//!   touch the allocator.
//! * **Incremental sufficient statistics** — the piecewise transition
//!   searches ([`fit_const_log`], [`fit_exp_log`]) only ever need segment
//!   sums (Σe^{−λx}, Σe^{−2λx}, Σy·e^{−λx}, Σy, Σy², Σln x, Σ(ln x)²,
//!   Σy·ln x). Prefix/suffix accumulators make each (λ, k) candidate a
//!   closed-form 2×2 solve with an O(1) SSE, collapsing the exp/log
//!   transition search from O(λ·n²) with per-candidate heap traffic to a
//!   single O(λ·n) pass.
//!
//! On top of the grid search, [`fit_exp_log`] runs a golden-section
//! refinement of the decay rate λ around the best grid point, so the grid
//! only has to bracket the optimum, not hit it.
//!
//! The pre-engine naive implementations are preserved verbatim in
//! [`oracle`] and serve as ground truth for the property tests in
//! `tests/properties.rs` and the speedup benches in `bench/analytics`.

/// Relative pivot threshold: a system is declared singular when the best
/// remaining pivot is smaller than `PIVOT_RTOL` × the largest absolute
/// entry of the input matrix. Scale-relative (rather than the absolute
/// `1e-12` cutoff this crate used originally) so that well-conditioned
/// systems expressed in tiny units (nanosecond latencies, per-byte rates)
/// or huge ones (GB-scale byte counts) are classified by conditioning,
/// not by magnitude.
const PIVOT_RTOL: f64 = 1e-12;

/// Number of decay-rate candidates scanned by [`expfit`] and
/// [`fit_exp_log`].
const N_LAMBDA: usize = 240;

/// Minimum points in the exponential head of [`fit_exp_log`].
const K_MIN: usize = 4;

/// Golden-section iterations for the λ refinement (each shrinks the
/// bracket by ×0.618; 48 iterations reduce a one-grid-step bracket far
/// below f64 resolution).
const REFINE_ITERS: usize = 48;

/// Largest magnitude over the entries of a fixed-size matrix.
fn matrix_scale<const N: usize>(a: &[[f64; N]; N]) -> f64 {
    a.iter()
        .flat_map(|row| row.iter())
        .fold(0.0f64, |s, &v| s.max(v.abs()))
}

/// Solves the linear system `A·x = b` by Gaussian elimination with partial
/// pivoting. Returns `None` for singular systems (pivot below
/// [`PIVOT_RTOL`] relative to the largest input entry).
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn solve_linear(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix/vector size mismatch");
    let scale = a
        .iter()
        .flat_map(|row| row.iter())
        .fold(0.0f64, |s, &v| s.max(v.abs()));
    if scale == 0.0 {
        return None;
    }
    let tol = PIVOT_RTOL * scale;
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            assert_eq!(row.len(), n, "matrix must be square");
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))?;
        if m[pivot][col].abs() < tol {
            return None;
        }
        m.swap(col, pivot);
        for row in 0..n {
            if row != col {
                let f = m[row][col] / m[col][col];
                // Index-based: `m[row]` and `m[col]` alias the same matrix.
                #[allow(clippy::needless_range_loop)]
                for k in col..=n {
                    m[row][k] -= f * m[col][k];
                }
            }
        }
    }
    Some((0..n).map(|i| m[i][n] / m[i][i]).collect())
}

/// Stack-allocated Gaussian elimination with partial pivoting for the
/// small fixed-size systems every fit in this crate reduces to. Same
/// elimination order and scale-relative singularity test as
/// [`solve_linear`], zero heap traffic.
pub fn solve_fixed<const N: usize>(mut a: [[f64; N]; N], mut b: [f64; N]) -> Option<[f64; N]> {
    let scale = matrix_scale(&a);
    if scale == 0.0 {
        return None;
    }
    let tol = PIVOT_RTOL * scale;
    for col in 0..N {
        let pivot = (col..N).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < tol {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in 0..N {
            if row != col {
                let f = a[row][col] / a[col][col];
                // Index-based: `a[row]` and `a[col]` alias the same matrix.
                #[allow(clippy::needless_range_loop)]
                for k in col..N {
                    a[row][k] -= f * a[col][k];
                }
                b[row] -= f * b[col];
            }
        }
    }
    let mut x = [0.0; N];
    for (i, xi) in x.iter_mut().enumerate() {
        *xi = b[i] / a[i][i];
    }
    Some(x)
}

/// Ordinary least squares: finds `beta` minimizing `‖X·beta − y‖²`.
///
/// Returns `None` when the normal equations are singular (e.g. collinear
/// features or fewer points than parameters).
///
/// # Panics
///
/// Panics if `rows` and `y` lengths differ, or rows are ragged.
pub fn least_squares(rows: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(rows.len(), y.len(), "design/target size mismatch");
    let n = rows.first()?.len();
    let mut xtx = vec![vec![0.0; n]; n];
    let mut xty = vec![0.0; n];
    for (row, &yi) in rows.iter().zip(y) {
        assert_eq!(row.len(), n, "ragged design matrix");
        for i in 0..n {
            for j in 0..n {
                xtx[i][j] += row[i] * row[j];
            }
            xty[i] += row[i] * yi;
        }
    }
    solve_linear(&xtx, &xty)
}

/// Least squares over a stream of fixed-width design rows: accumulates the
/// normal equations directly into stack arrays (no design matrix is ever
/// materialized) and solves with [`solve_fixed`]. Accumulation order is
/// identical to [`least_squares`], so results agree to the last bit for
/// the same rows.
pub fn least_squares_fixed<const N: usize>(
    rows: impl Iterator<Item = ([f64; N], f64)>,
) -> Option<[f64; N]> {
    let mut xtx = [[0.0; N]; N];
    let mut xty = [0.0; N];
    for (row, yi) in rows {
        for i in 0..N {
            for j in 0..N {
                xtx[i][j] += row[i] * row[j];
            }
            xty[i] += row[i] * yi;
        }
    }
    solve_fixed(xtx, xty)
}

/// Fits `y = c₀ + c₁x + … + c_d x^d`, returning coefficients lowest-order
/// first. Returns `None` for degenerate inputs.
pub fn polyfit(x: &[f64], y: &[f64], degree: usize) -> Option<Vec<f64>> {
    polyfit_weighted(x, y, degree, |_, _| 1.0)
}

/// Weighted polynomial fit: minimizes `Σ wᵢ·(ŷᵢ − yᵢ)²` with
/// `wᵢ = weight(xᵢ, yᵢ)`. Weighting by `1/y²` yields a relative
/// (percentage-error) fit, which is what keeps the paper's prefill MAPE
/// low across three orders of magnitude of latency.
///
/// Degrees ≤ 4 (every use in this workspace) run allocation-free on the
/// fixed-size solver; higher degrees fall back to the generic path.
pub fn polyfit_weighted<W>(x: &[f64], y: &[f64], degree: usize, weight: W) -> Option<Vec<f64>>
where
    W: Fn(f64, f64) -> f64,
{
    if x.len() != y.len() || x.len() <= degree {
        return None;
    }
    match degree {
        0 => polyfit_fixed::<1, W>(x, y, weight),
        1 => polyfit_fixed::<2, W>(x, y, weight),
        2 => polyfit_fixed::<3, W>(x, y, weight),
        3 => polyfit_fixed::<4, W>(x, y, weight),
        4 => polyfit_fixed::<5, W>(x, y, weight),
        _ => {
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(x.len());
            let mut ys: Vec<f64> = Vec::with_capacity(x.len());
            for (&xi, &yi) in x.iter().zip(y) {
                let w = weight(xi, yi).max(0.0).sqrt();
                rows.push((0..=degree).map(|p| w * xi.powi(p as i32)).collect());
                ys.push(w * yi);
            }
            least_squares(&rows, &ys)
        }
    }
}

fn polyfit_fixed<const N: usize, W>(x: &[f64], y: &[f64], weight: W) -> Option<Vec<f64>>
where
    W: Fn(f64, f64) -> f64,
{
    let beta = least_squares_fixed(x.iter().zip(y).map(|(&xi, &yi)| {
        let w = weight(xi, yi).max(0.0).sqrt();
        let mut row = [0.0; N];
        for (p, r) in row.iter_mut().enumerate() {
            *r = w * xi.powi(p as i32);
        }
        (row, w * yi)
    }))?;
    Some(beta.to_vec())
}

/// Fits `y = a·ln(x) + b`. Returns `(a, b)`, or `None` for degenerate
/// input (fewer than 2 points or non-positive x).
pub fn logfit(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
    if x.len() != y.len() || x.len() < 2 || x.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let beta = least_squares_fixed(x.iter().zip(y).map(|(&xi, &yi)| ([xi.ln(), 1.0], yi)))?;
    Some((beta[0], beta[1]))
}

/// Fits the exponential decay `y = A·e^(−λx) + C` by scanning λ and
/// solving (A, C) linearly at each candidate — robust and derivative-free.
/// Returns `(A, lambda, C)`.
pub fn expfit(x: &[f64], y: &[f64]) -> Option<(f64, f64, f64)> {
    if x.len() != y.len() || x.len() < 3 {
        return None;
    }
    let x_span = x.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - x.iter().copied().fold(f64::INFINITY, f64::min);
    if x_span <= 0.0 {
        return None;
    }
    // One scratch buffer of e^{−λx}, reused across every λ candidate.
    let mut e = vec![0.0; x.len()];
    let mut best: Option<(f64, (f64, f64, f64))> = None;
    // λ spans decay lengths from ~100× the x range down to ~1/100th.
    for i in 0..N_LAMBDA {
        let lambda = (10.0f64.powf(-2.0 + 4.0 * i as f64 / 239.0)) / x_span;
        let mut xtx = [[0.0; 2]; 2];
        let mut xty = [0.0; 2];
        for (k, (&xi, &yi)) in x.iter().zip(y).enumerate() {
            let ei = (-lambda * xi).exp();
            e[k] = ei;
            xtx[0][0] += ei * ei;
            xtx[0][1] += ei;
            xtx[1][0] += ei;
            xtx[1][1] += 1.0;
            xty[0] += ei * yi;
            xty[1] += yi;
        }
        let Some(beta) = solve_fixed(xtx, xty) else {
            continue;
        };
        let sse: f64 = e
            .iter()
            .zip(y)
            .map(|(&ei, &yi)| (ei * beta[0] + beta[1] - yi).powi(2))
            .sum();
        if best.as_ref().is_none_or(|(b, _)| sse < *b) {
            best = Some((sse, (beta[0], lambda, beta[1])));
        }
    }
    best.map(|(_, p)| p)
}

/// A fitted piecewise model: constant `u` for `x ≤ v`, logarithmic
/// `w·ln(x) + z` beyond — the form of the paper's power models (Eqn. 4/6).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PiecewiseConstLog {
    /// Constant level in the low regime.
    pub u: f64,
    /// Transition point.
    pub v: f64,
    /// Log slope in the high regime.
    pub w: f64,
    /// Log intercept in the high regime.
    pub z: f64,
}

impl PiecewiseConstLog {
    /// Evaluates the model.
    pub fn predict(&self, x: f64) -> f64 {
        if x <= self.v {
            self.u
        } else {
            self.w * x.ln() + self.z
        }
    }
}

/// Sorts a sample set by x, returning parallel vectors.
fn sort_by_x(x: &[f64], y: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&i, &j| x[i].total_cmp(&x[j]));
    let xs: Vec<f64> = idx.iter().map(|&i| x[i]).collect();
    let ys: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
    (xs, ys)
}

/// Log-tail least squares for every suffix `[k..]` in one right-to-left
/// pass: `out[k] = (w, z, sse)` for the fit `y = w·ln x + z` over
/// `xs[k..]`, or `None` when the tail is degenerate (non-positive x,
/// fewer than 2 points, or collinear features). O(n) total — this is the
/// suffix half of the sufficient-statistic engine.
fn log_tail_fits(xs: &[f64], ys: &[f64]) -> Vec<Option<(f64, f64, f64)>> {
    let n = xs.len();
    let mut out: Vec<Option<(f64, f64, f64)>> = vec![None; n];
    let (mut sl, mut sll, mut sy, mut syl, mut syy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    let mut cnt = 0usize;
    for k in (0..n).rev() {
        // xs is sorted ascending: once a non-positive x appears, every
        // shorter split below it also contains it — stop.
        if xs[k] <= 0.0 {
            break;
        }
        let l = xs[k].ln();
        sl += l;
        sll += l * l;
        sy += ys[k];
        syl += ys[k] * l;
        syy += ys[k] * ys[k];
        cnt += 1;
        if cnt < 2 {
            continue;
        }
        let m = cnt as f64;
        if let Some(beta) = solve_fixed([[sll, sl], [sl, m]], [syl, sy]) {
            let (w, z) = (beta[0], beta[1]);
            let sse =
                (syy - 2.0 * w * syl - 2.0 * z * sy + w * w * sll + 2.0 * w * z * sl + z * z * m)
                    .max(0.0);
            out[k] = Some((w, z, sse));
        }
    }
    out
}

/// Fits [`PiecewiseConstLog`] by scanning candidate transitions over the
/// sample's x values; each side is fitted optimally (mean / log LSQ).
/// Needs ≥ 4 points; falls back to a pure log fit expressed with `v` below
/// the data range when that is better.
///
/// Runs in O(n log n) (the sort dominates): prefix sums give the constant
/// side's mean and SSE in O(1) per split, and [`log_tail_fits`] gives the
/// log side in O(1) per split.
pub fn fit_const_log(x: &[f64], y: &[f64]) -> Option<PiecewiseConstLog> {
    if x.len() != y.len() || x.len() < 4 || x.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let (xs, ys) = sort_by_x(x, y);
    let n = xs.len();
    let tails = log_tail_fits(&xs, &ys);
    let mut py = vec![0.0; n + 1];
    let mut pyy = vec![0.0; n + 1];
    for i in 0..n {
        py[i + 1] = py[i] + ys[i];
        pyy[i + 1] = pyy[i] + ys[i] * ys[i];
    }

    let mut best: Option<(f64, PiecewiseConstLog)> = None;
    // Split after k points (k = 0 means all-log).
    for k in 0..n - 2 {
        let (u, sse_lo) = if k == 0 {
            (f64::NAN, 0.0)
        } else {
            let m = py[k] / k as f64;
            (m, (pyy[k] - py[k] * m).max(0.0))
        };
        let Some((w, z, sse_hi)) = tails[k] else {
            continue;
        };
        let v = if k == 0 {
            xs[0] * 0.5
        } else {
            0.5 * (xs[k - 1] + xs[k])
        };
        let u = if u.is_nan() { w * v.ln() + z } else { u };
        let sse = sse_lo + sse_hi;
        if best.as_ref().is_none_or(|(e, _)| sse < *e) {
            best = Some((sse, PiecewiseConstLog { u, v, w, z }));
        }
    }
    best.map(|(_, m)| m)
}

/// A fitted piecewise model: exponential decay for `x ≤ v`, logarithmic
/// growth beyond — the paper's energy-per-token form (Eqn. 5).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PiecewiseExpLog {
    /// Decay amplitude.
    pub a: f64,
    /// Decay rate.
    pub lambda: f64,
    /// Decay asymptote.
    pub c: f64,
    /// Transition point.
    pub v: f64,
    /// Log slope beyond the transition.
    pub alpha: f64,
    /// Log intercept beyond the transition.
    pub beta: f64,
}

impl PiecewiseExpLog {
    /// Evaluates the model.
    pub fn predict(&self, x: f64) -> f64 {
        if x <= self.v {
            self.a * (-self.lambda * x).exp() + self.c
        } else {
            self.alpha * x.ln() + self.beta
        }
    }
}

/// The geometric λ-candidate grid shared by the [`fit_exp_log`] transition
/// search and its [`oracle`] counterpart: one fixed grid for every split,
/// spanning decay lengths from ~100× the full x range down to ~1/100th of
/// the smallest admissible exponential head. (A fixed grid is what lets
/// the search share Σe^{−λx} prefix sums across all splits; the λ
/// refinement recovers the resolution a per-split grid would have had.)
#[derive(Debug, Clone, Copy)]
pub struct LambdaGrid {
    lo: f64,
    hi: f64,
}

impl LambdaGrid {
    /// Builds the grid for sorted sample positions. `None` when the data
    /// has zero x span (no decay scale exists).
    pub fn for_split_search(xs: &[f64]) -> Option<Self> {
        let full = xs[xs.len() - 1] - xs[0];
        if full <= 0.0 {
            return None;
        }
        let head = xs[K_MIN - 1] - xs[0];
        let head = if head > 0.0 { head } else { full };
        Some(Self {
            lo: 1e-2 / full,
            hi: 1e2 / head,
        })
    }

    /// The `i`-th of the [`N_LAMBDA`] geometrically spaced candidates.
    pub fn at(&self, i: usize) -> f64 {
        self.lo * (self.hi / self.lo).powf(i as f64 / (N_LAMBDA - 1) as f64)
    }
}

/// Closed-form (A, C) solve plus O(1) SSE for an exponential head from its
/// five sufficient statistics (Σe², Σe, Σye, Σy, Σy² over the segment).
fn exp_head_solve(
    se: f64,
    see: f64,
    sye: f64,
    sy: f64,
    syy: f64,
    cnt: usize,
) -> Option<(f64, f64, f64)> {
    let m = cnt as f64;
    let beta = solve_fixed([[see, se], [se, m]], [sye, sy])?;
    let (a, c) = (beta[0], beta[1]);
    let sse =
        (syy + a * a * see + c * c * m + 2.0 * a * c * se - 2.0 * a * sye - 2.0 * c * sy).max(0.0);
    Some((a, c, sse))
}

/// Evaluates the exponential head fit over `xs[..k]` at one λ in a single
/// accumulation pass (used by the golden-section refinement, where only a
/// handful of λ values are probed).
fn exp_head_eval(xs: &[f64], ys: &[f64], k: usize, lambda: f64) -> Option<(f64, f64, f64)> {
    let (mut se, mut see, mut sye, mut sy, mut syy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for j in 0..k {
        let e = (-lambda * xs[j]).exp();
        se += e;
        see += e * e;
        sye += e * ys[j];
        sy += ys[j];
        syy += ys[j] * ys[j];
    }
    exp_head_solve(se, see, sye, sy, syy, k)
}

/// Golden-section minimization of `eval`'s SSE over λ ∈ `[lo, hi]`
/// (searched in log-space, matching the geometric candidate grid).
/// Returns `(lambda, a, c, sse)` at the refined point.
fn refine_lambda<F>(lo: f64, hi: f64, mut eval: F) -> Option<(f64, f64, f64, f64)>
where
    F: FnMut(f64) -> Option<(f64, f64, f64)>,
{
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    if !(lo > 0.0 && hi > lo) {
        return None;
    }
    let (mut a, mut b) = (lo.ln(), hi.ln());
    let probe = |t: f64, eval: &mut F| eval(t.exp()).map_or(f64::INFINITY, |(_, _, s)| s);
    let mut x1 = b - INV_PHI * (b - a);
    let mut x2 = a + INV_PHI * (b - a);
    let mut f1 = probe(x1, &mut eval);
    let mut f2 = probe(x2, &mut eval);
    for _ in 0..REFINE_ITERS {
        if f1 <= f2 {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - INV_PHI * (b - a);
            f1 = probe(x1, &mut eval);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + INV_PHI * (b - a);
            f2 = probe(x2, &mut eval);
        }
    }
    let lambda = if f1 <= f2 { x1.exp() } else { x2.exp() };
    eval(lambda).map(|(ea, ec, sse)| (lambda, ea, ec, sse))
}

/// Winner of the [`fit_exp_log`] grid search, before λ refinement.
enum ExpLogBest {
    /// A genuine split: exponential head over `[..k]` at grid index `lam`.
    Split {
        sse: f64,
        lam: usize,
        k: usize,
        a: f64,
        c: f64,
    },
    /// The whole-range exponential fallback.
    Whole {
        sse: f64,
        a: f64,
        lambda: f64,
        c: f64,
    },
}

/// Fits [`PiecewiseExpLog`] by scanning transition candidates. Needs ≥ 7
/// points (≥ 4 below and ≥ 3 above the transition are fitted per side; if
/// no valid split exists the whole range is fitted as exponential decay
/// with the transition placed past the data).
///
/// The search runs in O(λ·n): per λ candidate one prefix pass builds the
/// exponential sufficient statistics, after which every split is an O(1)
/// closed-form solve; the log tails are prefitted once by
/// [`log_tail_fits`]. A golden-section refinement then polishes λ inside
/// its bracketing grid interval (the grid pins λ to ~4% otherwise).
pub fn fit_exp_log(x: &[f64], y: &[f64]) -> Option<PiecewiseExpLog> {
    if x.len() != y.len() || x.len() < 7 {
        return None;
    }
    let (xs, ys) = sort_by_x(x, y);
    let n = xs.len();
    let k_max = n - 3;

    let grid = LambdaGrid::for_split_search(&xs);
    let tails = log_tail_fits(&xs, &ys);
    let mut py = vec![0.0; n + 1];
    let mut pyy = vec![0.0; n + 1];
    for i in 0..n {
        py[i + 1] = py[i] + ys[i];
        pyy[i + 1] = pyy[i] + ys[i] * ys[i];
    }

    let mut best: Option<ExpLogBest> = None;
    if let Some(grid) = grid {
        let mut pe = vec![0.0; k_max + 1];
        let mut pee = vec![0.0; k_max + 1];
        let mut pye = vec![0.0; k_max + 1];
        for i in 0..N_LAMBDA {
            let lambda = grid.at(i);
            for j in 0..k_max {
                let e = (-lambda * xs[j]).exp();
                pe[j + 1] = pe[j] + e;
                pee[j + 1] = pee[j] + e * e;
                pye[j + 1] = pye[j] + e * ys[j];
            }
            for k in K_MIN..=k_max {
                let Some((_, _, sse_log)) = tails[k] else {
                    continue;
                };
                let Some((a, c, sse_exp)) = exp_head_solve(pe[k], pee[k], pye[k], py[k], pyy[k], k)
                else {
                    continue;
                };
                let sse = sse_exp + sse_log;
                let better = match &best {
                    Some(ExpLogBest::Split { sse: b, .. } | ExpLogBest::Whole { sse: b, .. }) => {
                        sse < *b
                    }
                    None => true,
                };
                if better {
                    best = Some(ExpLogBest::Split {
                        sse,
                        lam: i,
                        k,
                        a,
                        c,
                    });
                }
            }
        }
    }

    // Whole-range exponential fallback.
    if let Some((a, lambda, c)) = expfit(&xs, &ys) {
        let sse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(&xi, &yi)| (a * (-lambda * xi).exp() + c - yi).powi(2))
            .sum();
        let better = match &best {
            Some(ExpLogBest::Split { sse: b, .. } | ExpLogBest::Whole { sse: b, .. }) => sse < *b,
            None => true,
        };
        if better {
            best = Some(ExpLogBest::Whole { sse, a, lambda, c });
        }
    }

    match best? {
        ExpLogBest::Split { sse, lam, k, a, c } => {
            // Split winners only exist with a grid and a fitted log tail;
            // `?` keeps that invariant non-panicking.
            let grid = grid?;
            let (alpha, beta, sse_log) = tails[k]?;
            let mut model = PiecewiseExpLog {
                a,
                lambda: grid.at(lam),
                c,
                v: 0.5 * (xs[k - 1] + xs[k]),
                alpha,
                beta,
            };
            // The log tail is λ-independent: refine λ against the
            // exponential head's SSE inside the bracketing grid interval.
            let lo = grid.at(lam.saturating_sub(1));
            let hi = grid.at((lam + 1).min(N_LAMBDA - 1));
            if let Some((lambda, ra, rc, rsse)) =
                refine_lambda(lo, hi, |l| exp_head_eval(&xs, &ys, k, l))
            {
                if rsse + sse_log < sse {
                    model.a = ra;
                    model.lambda = lambda;
                    model.c = rc;
                }
            }
            Some(model)
        }
        ExpLogBest::Whole { sse, a, lambda, c } => {
            let mut model = PiecewiseExpLog {
                a,
                lambda,
                c,
                v: xs[n - 1] * 2.0,
                alpha: 0.0,
                beta: c,
            };
            // Refine within one step of `expfit`'s own geometric grid.
            let step = 10.0f64.powf(4.0 / 239.0);
            if let Some((rl, ra, rc, rsse)) = refine_lambda(lambda / step, lambda * step, |l| {
                exp_head_eval(&xs, &ys, n, l)
            }) {
                if rsse < sse {
                    model.a = ra;
                    model.lambda = rl;
                    model.c = rc;
                    model.beta = rc;
                }
            }
            Some(model)
        }
    }
}

pub mod oracle {
    //! Naive reference implementations of the piecewise fitters, preserved
    //! from before the sufficient-statistic engine: every (λ, k) candidate
    //! builds a fresh design matrix, solves generic normal equations, and
    //! scores with a full residual pass — O(λ·n²) with per-candidate heap
    //! allocation. They compute the same specification as the fast
    //! fitters and exist solely as ground truth for `tests/properties.rs`
    //! and the `bench/analytics` speedup benches; never call them on a hot
    //! path.

    use super::{
        least_squares, LambdaGrid, PiecewiseConstLog, PiecewiseExpLog, K_MIN, N_LAMBDA,
        REFINE_ITERS,
    };

    /// Naive `y = a·ln(x) + b` via an explicit design matrix.
    pub fn logfit(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
        if x.len() != y.len() || x.len() < 2 || x.iter().any(|&v| v <= 0.0) {
            return None;
        }
        let rows: Vec<Vec<f64>> = x.iter().map(|&xi| vec![xi.ln(), 1.0]).collect();
        let beta = least_squares(&rows, y)?;
        Some((beta[0], beta[1]))
    }

    /// Naive polynomial fit via an explicit design matrix.
    pub fn polyfit(x: &[f64], y: &[f64], degree: usize) -> Option<Vec<f64>> {
        if x.len() != y.len() || x.len() <= degree {
            return None;
        }
        let rows: Vec<Vec<f64>> = x
            .iter()
            .map(|&xi| (0..=degree).map(|p| xi.powi(p as i32)).collect())
            .collect();
        least_squares(&rows, y)
    }

    /// Naive `y = A·e^(−λx) + C`: per-λ design matrices and residual SSE.
    pub fn expfit(x: &[f64], y: &[f64]) -> Option<(f64, f64, f64)> {
        if x.len() != y.len() || x.len() < 3 {
            return None;
        }
        let x_span = x.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - x.iter().copied().fold(f64::INFINITY, f64::min);
        if x_span <= 0.0 {
            return None;
        }
        let mut best: Option<(f64, (f64, f64, f64))> = None;
        for i in 0..N_LAMBDA {
            let lambda = (10.0f64.powf(-2.0 + 4.0 * i as f64 / 239.0)) / x_span;
            let rows: Vec<Vec<f64>> = x
                .iter()
                .map(|&xi| vec![(-lambda * xi).exp(), 1.0])
                .collect();
            let Some(beta) = least_squares(&rows, y) else {
                continue;
            };
            let sse: f64 = rows
                .iter()
                .zip(y)
                .map(|(r, &yi)| (r[0] * beta[0] + beta[1] - yi).powi(2))
                .sum();
            if best.as_ref().is_none_or(|(e, _)| sse < *e) {
                best = Some((sse, (beta[0], lambda, beta[1])));
            }
        }
        best.map(|(_, p)| p)
    }

    /// Naive [`PiecewiseConstLog`] transition search: per-split mean and
    /// log least squares over freshly built matrices.
    pub fn fit_const_log(x: &[f64], y: &[f64]) -> Option<PiecewiseConstLog> {
        if x.len() != y.len() || x.len() < 4 || x.iter().any(|&v| v <= 0.0) {
            return None;
        }
        let (xs, ys) = super::sort_by_x(x, y);

        let mut best: Option<(f64, PiecewiseConstLog)> = None;
        for k in 0..xs.len() - 2 {
            let (u, sse_lo) = if k == 0 {
                (f64::NAN, 0.0)
            } else {
                let m = ys[..k].iter().sum::<f64>() / k as f64;
                (m, ys[..k].iter().map(|&v| (v - m).powi(2)).sum())
            };
            let Some((w, z)) = logfit(&xs[k..], &ys[k..]) else {
                continue;
            };
            let sse_hi: f64 = xs[k..]
                .iter()
                .zip(&ys[k..])
                .map(|(&xi, &yi)| (w * xi.ln() + z - yi).powi(2))
                .sum();
            let v = if k == 0 {
                xs[0] * 0.5
            } else {
                0.5 * (xs[k - 1] + xs[k])
            };
            let u = if u.is_nan() { w * v.ln() + z } else { u };
            let sse = sse_lo + sse_hi;
            if best.as_ref().is_none_or(|(e, _)| sse < *e) {
                best = Some((sse, PiecewiseConstLog { u, v, w, z }));
            }
        }
        best.map(|(_, m)| m)
    }

    /// Per-λ naive exponential-head fit over `xs[..k]`: design matrix,
    /// generic least squares, residual SSE.
    fn exp_head(xs: &[f64], ys: &[f64], k: usize, lambda: f64) -> Option<(f64, f64, f64)> {
        let rows: Vec<Vec<f64>> = xs[..k]
            .iter()
            .map(|&xi| vec![(-lambda * xi).exp(), 1.0])
            .collect();
        let beta = least_squares(&rows, &ys[..k])?;
        let sse: f64 = rows
            .iter()
            .zip(&ys[..k])
            .map(|(r, &yi)| (r[0] * beta[0] + beta[1] - yi).powi(2))
            .sum();
        Some((beta[0], beta[1], sse))
    }

    /// Golden-section λ refinement mirroring the fast fitter's bracketing
    /// logic, driven by the naive per-λ evaluation.
    fn refine(lo: f64, hi: f64, xs: &[f64], ys: &[f64], k: usize) -> Option<(f64, f64, f64, f64)> {
        const INV_PHI: f64 = 0.618_033_988_749_894_8;
        if !(lo > 0.0 && hi > lo) {
            return None;
        }
        let (mut a, mut b) = (lo.ln(), hi.ln());
        let probe = |t: f64| exp_head(xs, ys, k, t.exp()).map_or(f64::INFINITY, |(_, _, s)| s);
        let mut x1 = b - INV_PHI * (b - a);
        let mut x2 = a + INV_PHI * (b - a);
        let mut f1 = probe(x1);
        let mut f2 = probe(x2);
        for _ in 0..REFINE_ITERS {
            if f1 <= f2 {
                b = x2;
                x2 = x1;
                f2 = f1;
                x1 = b - INV_PHI * (b - a);
                f1 = probe(x1);
            } else {
                a = x1;
                x1 = x2;
                f1 = f2;
                x2 = a + INV_PHI * (b - a);
                f2 = probe(x2);
            }
        }
        let lambda = if f1 <= f2 { x1.exp() } else { x2.exp() };
        exp_head(xs, ys, k, lambda).map(|(ea, ec, sse)| (lambda, ea, ec, sse))
    }

    /// Naive [`PiecewiseExpLog`] fit computing the same specification as
    /// the fast [`super::fit_exp_log`] (shared λ grid, same split range,
    /// same whole-range fallback, same golden-section refinement) with
    /// O(λ·n²) design-matrix work per candidate.
    pub fn fit_exp_log(x: &[f64], y: &[f64]) -> Option<PiecewiseExpLog> {
        if x.len() != y.len() || x.len() < 7 {
            return None;
        }
        let (xs, ys) = super::sort_by_x(x, y);
        let n = xs.len();
        let k_max = n - 3;

        // (sse, lam index or None for the fallback, k, model)
        let mut best: Option<(f64, Option<usize>, usize, PiecewiseExpLog)> = None;
        if let Some(grid) = LambdaGrid::for_split_search(&xs) {
            for k in K_MIN..=k_max {
                let Some((alpha, beta)) = logfit(&xs[k..], &ys[k..]) else {
                    continue;
                };
                for i in 0..N_LAMBDA {
                    let lambda = grid.at(i);
                    let Some((a, c, _)) = exp_head(&xs, &ys, k, lambda) else {
                        continue;
                    };
                    let model = PiecewiseExpLog {
                        a,
                        lambda,
                        c,
                        v: 0.5 * (xs[k - 1] + xs[k]),
                        alpha,
                        beta,
                    };
                    let sse: f64 = xs
                        .iter()
                        .zip(&ys)
                        .map(|(&xi, &yi)| (model.predict(xi) - yi).powi(2))
                        .sum();
                    if best.as_ref().is_none_or(|(e, ..)| sse < *e) {
                        best = Some((sse, Some(i), k, model));
                    }
                }
            }
        }

        if let Some((a, lambda, c)) = expfit(&xs, &ys) {
            let model = PiecewiseExpLog {
                a,
                lambda,
                c,
                v: xs[n - 1] * 2.0,
                alpha: 0.0,
                beta: c,
            };
            let sse: f64 = xs
                .iter()
                .zip(&ys)
                .map(|(&xi, &yi)| (model.predict(xi) - yi).powi(2))
                .sum();
            if best.as_ref().is_none_or(|(e, ..)| sse < *e) {
                best = Some((sse, None, n, model));
            }
        }

        let (sse, lam, k, mut model) = best?;
        match lam {
            Some(i) => {
                let grid = LambdaGrid::for_split_search(&xs)?;
                let sse_log: f64 = xs[k..]
                    .iter()
                    .zip(&ys[k..])
                    .map(|(&xi, &yi)| (model.alpha * xi.ln() + model.beta - yi).powi(2))
                    .sum();
                let lo = grid.at(i.saturating_sub(1));
                let hi = grid.at((i + 1).min(N_LAMBDA - 1));
                if let Some((lambda, ra, rc, rsse)) = refine(lo, hi, &xs, &ys, k) {
                    if rsse + sse_log < sse {
                        model.a = ra;
                        model.lambda = lambda;
                        model.c = rc;
                    }
                }
            }
            None => {
                let step = 10.0f64.powf(4.0 / 239.0);
                if let Some((lambda, ra, rc, rsse)) =
                    refine(model.lambda / step, model.lambda * step, &xs, &ys, n)
                {
                    if rsse < sse {
                        model.a = ra;
                        model.lambda = lambda;
                        model.c = rc;
                        model.beta = rc;
                    }
                }
            }
        }
        Some(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_linear_2x2() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve_linear(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_linear_handles_badly_scaled_units() {
        // Nanosecond-scale units: every entry far below the old absolute
        // 1e-12 pivot cutoff, yet the system is perfectly conditioned.
        let a = vec![vec![2e-15, 1e-15], vec![1e-15, 3e-15]];
        let b = vec![5e-15, 10e-15];
        let x = solve_linear(&a, &b).expect("well-conditioned ns-scale system");
        assert!((x[0] - 1.0).abs() < 1e-9, "x0 = {}", x[0]);
        assert!((x[1] - 3.0).abs() < 1e-9, "x1 = {}", x[1]);
        // GB-scale units: huge entries made the old absolute cutoff accept
        // an effectively singular system; scale-relative rejects it.
        let a = vec![vec![1e9, 2e9], vec![2e9, 4e9 + 1e-3]];
        assert!(solve_linear(&a, &[1.0, 2.0]).is_none());
        // The fixed-size solver applies the same rule.
        assert!(solve_fixed([[2e-15, 1e-15], [1e-15, 3e-15]], [5e-15, 10e-15]).is_some());
        assert!(solve_fixed([[1e9, 2e9], [2e9, 4e9 + 1e-3]], [1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_fixed_matches_solve_linear() {
        let a = [[3.0, 1.0, -2.0], [1.0, -4.0, 0.5], [2.0, 7.0, 9.0]];
        let b = [5.0, -3.0, 11.0];
        let fixed = solve_fixed(a, b).unwrap();
        let heap = solve_linear(&a.iter().map(|r| r.to_vec()).collect::<Vec<_>>(), &b).unwrap();
        for (f, h) in fixed.iter().zip(&heap) {
            assert!((f - h).abs() < 1e-12, "{f} vs {h}");
        }
    }

    #[test]
    fn polyfit_recovers_quadratic() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64 * 50.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3e-7 * x * x + 2e-4 * x + 0.1).collect();
        let c = polyfit(&xs, &ys, 2).unwrap();
        assert!((c[0] - 0.1).abs() < 1e-9);
        assert!((c[1] - 2e-4).abs() < 1e-12);
        assert!((c[2] - 3e-7).abs() < 1e-15);
    }

    #[test]
    fn polyfit_rejects_underdetermined() {
        assert!(polyfit(&[1.0, 2.0], &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn polyfit_high_degree_falls_back_to_generic_path() {
        let xs: Vec<f64> = (1..=16).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 + 2.0 * x.powi(5)).collect();
        let c = polyfit(&xs, &ys, 5).unwrap();
        assert_eq!(c.len(), 6);
        assert!((c[5] - 2.0).abs() < 1e-6, "c5 = {}", c[5]);
    }

    #[test]
    fn logfit_recovers_parameters() {
        let xs: Vec<f64> = (1..=50).map(|i| i as f64 * 20.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 4.5 * x.ln() - 2.0).collect();
        let (a, b) = logfit(&xs, &ys).unwrap();
        assert!((a - 4.5).abs() < 1e-9);
        assert!((b + 2.0).abs() < 1e-9);
    }

    #[test]
    fn expfit_recovers_decay() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 25.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 0.16 * (-0.03 * x).exp() + 0.005)
            .collect();
        let (a, lambda, c) = expfit(&xs, &ys).unwrap();
        assert!((a - 0.16).abs() < 0.02, "A={a}");
        assert!((lambda - 0.03).abs() < 0.005, "lambda={lambda}");
        assert!((c - 0.005).abs() < 0.002, "C={c}");
    }

    #[test]
    fn const_log_finds_transition() {
        let xs: Vec<f64> = (1..=60).map(|i| i as f64 * 50.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x <= 800.0 { 6.0 } else { 1.2 * x.ln() - 2.0 })
            .collect();
        let m = fit_const_log(&xs, &ys).unwrap();
        assert!((m.u - 6.0).abs() < 0.1, "u={}", m.u);
        assert!((m.v - 800.0).abs() < 120.0, "v={}", m.v);
        assert!((m.w - 1.2).abs() < 0.05, "w={}", m.w);
    }

    #[test]
    fn exp_log_fits_both_regimes() {
        let xs: Vec<f64> = (1..=50).map(|i| i as f64 * 40.0).collect();
        let true_model = |x: f64| {
            if x <= 640.0 {
                0.159 * (-0.0324f64 * x).exp() + 0.0055
            } else {
                0.0123 * x.ln() - 0.0735
            }
        };
        let ys: Vec<f64> = xs.iter().map(|&x| true_model(x)).collect();
        let m = fit_exp_log(&xs, &ys).unwrap();
        let mape: f64 = xs
            .iter()
            .map(|&x| ((m.predict(x) - true_model(x)) / true_model(x)).abs())
            .sum::<f64>()
            / xs.len() as f64;
        assert!(mape < 0.15, "piecewise exp/log MAPE {mape}");
    }

    #[test]
    fn exp_log_refinement_recovers_exact_lambda() {
        // Exact exp-then-log data: the λ grid alone is ~4% coarse, the
        // golden-section refinement should land within ~0.01% of truth.
        let xs: Vec<f64> = (1..=64).map(|i| i as f64 * 64.0).collect();
        let true_model = |x: f64| {
            if x < 640.0 {
                0.16 * (-0.03 * x).exp() + 0.005
            } else {
                0.012 * x.ln() - 0.07
            }
        };
        let ys: Vec<f64> = xs.iter().map(|&x| true_model(x)).collect();
        let m = fit_exp_log(&xs, &ys).unwrap();
        assert!(
            (m.lambda - 0.03).abs() / 0.03 < 1e-4,
            "refined lambda {} vs 0.03",
            m.lambda
        );
        assert!((m.a - 0.16).abs() / 0.16 < 1e-3, "a = {}", m.a);
        assert!((m.c - 0.005).abs() / 0.005 < 1e-2, "c = {}", m.c);
    }

    #[test]
    fn fast_exp_log_matches_oracle_on_calibration_data() {
        // The bench/analytics calibration dataset (64-point exp→log).
        let xs: Vec<f64> = (1..=64).map(|k| k as f64 * 64.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                if x < 640.0 {
                    0.16 * (-0.03 * x).exp() + 0.005
                } else {
                    0.012 * x.ln() - 0.07
                }
            })
            .collect();
        let fast = fit_exp_log(&xs, &ys).unwrap();
        let naive = oracle::fit_exp_log(&xs, &ys).unwrap();
        for (name, f, o) in [
            ("a", fast.a, naive.a),
            ("lambda", fast.lambda, naive.lambda),
            ("c", fast.c, naive.c),
            ("v", fast.v, naive.v),
            ("alpha", fast.alpha, naive.alpha),
            ("beta", fast.beta, naive.beta),
        ] {
            let rel = (f - o).abs() / o.abs().max(1e-300);
            assert!(rel < 1e-6, "{name}: fast {f} vs oracle {o} (rel {rel:.2e})");
        }
    }

    #[test]
    fn fast_const_log_matches_oracle_on_calibration_data() {
        let xs: Vec<f64> = (1..=64).map(|k| k as f64 * 64.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 800.0 { 6.0 } else { 1.2 * x.ln() - 2.0 })
            .collect();
        let fast = fit_const_log(&xs, &ys).unwrap();
        let naive = oracle::fit_const_log(&xs, &ys).unwrap();
        for (name, f, o) in [
            ("u", fast.u, naive.u),
            ("v", fast.v, naive.v),
            ("w", fast.w, naive.w),
            ("z", fast.z, naive.z),
        ] {
            let rel = (f - o).abs() / o.abs().max(1e-300);
            assert!(rel < 1e-6, "{name}: fast {f} vs oracle {o} (rel {rel:.2e})");
        }
    }

    #[test]
    fn least_squares_overdetermined() {
        // y = 2a + 3b with noise-free data.
        let rows = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ];
        let y = vec![2.0, 3.0, 5.0, 7.0];
        let beta = least_squares(&rows, &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-12);
        assert!((beta[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_fixed_matches_generic() {
        let rows = [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [2.0, 1.0]];
        let y = [2.0, 3.0, 5.0, 7.0];
        let fixed = least_squares_fixed(rows.iter().copied().zip(y.iter().copied())).unwrap();
        let generic =
            least_squares(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>(), &y).unwrap();
        assert_eq!(fixed[0].to_bits(), generic[0].to_bits());
        assert_eq!(fixed[1].to_bits(), generic[1].to_bits());
    }
}
