//! Curve-fitting machinery: least squares, log/exponential fits, piecewise
//! models with transition search.
//!
//! Everything the paper's analytical modeling needs (Eqns. 1–6), built on
//! normal equations + Gaussian elimination — no external numerics crates.

/// Solves the linear system `A·x = b` by Gaussian elimination with partial
/// pivoting. Returns `None` for singular systems.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn solve_linear(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix/vector size mismatch");
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            assert_eq!(row.len(), n, "matrix must be square");
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        for row in 0..n {
            if row != col {
                let f = m[row][col] / m[col][col];
                // Index-based: `m[row]` and `m[col]` alias the same matrix.
                #[allow(clippy::needless_range_loop)]
                for k in col..=n {
                    m[row][k] -= f * m[col][k];
                }
            }
        }
    }
    Some((0..n).map(|i| m[i][n] / m[i][i]).collect())
}

/// Ordinary least squares: finds `beta` minimizing `‖X·beta − y‖²`.
///
/// Returns `None` when the normal equations are singular (e.g. collinear
/// features or fewer points than parameters).
///
/// # Panics
///
/// Panics if `rows` and `y` lengths differ, or rows are ragged.
pub fn least_squares(rows: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(rows.len(), y.len(), "design/target size mismatch");
    let n = rows.first()?.len();
    let mut xtx = vec![vec![0.0; n]; n];
    let mut xty = vec![0.0; n];
    for (row, &yi) in rows.iter().zip(y) {
        assert_eq!(row.len(), n, "ragged design matrix");
        for i in 0..n {
            for j in 0..n {
                xtx[i][j] += row[i] * row[j];
            }
            xty[i] += row[i] * yi;
        }
    }
    solve_linear(&xtx, &xty)
}

/// Fits `y = c₀ + c₁x + … + c_d x^d`, returning coefficients lowest-order
/// first. Returns `None` for degenerate inputs.
pub fn polyfit(x: &[f64], y: &[f64], degree: usize) -> Option<Vec<f64>> {
    polyfit_weighted(x, y, degree, |_, _| 1.0)
}

/// Weighted polynomial fit: minimizes `Σ wᵢ·(ŷᵢ − yᵢ)²` with
/// `wᵢ = weight(xᵢ, yᵢ)`. Weighting by `1/y²` yields a relative
/// (percentage-error) fit, which is what keeps the paper's prefill MAPE
/// low across three orders of magnitude of latency.
pub fn polyfit_weighted<W>(x: &[f64], y: &[f64], degree: usize, weight: W) -> Option<Vec<f64>>
where
    W: Fn(f64, f64) -> f64,
{
    if x.len() != y.len() || x.len() <= degree {
        return None;
    }
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(x.len());
    let mut ys: Vec<f64> = Vec::with_capacity(x.len());
    for (&xi, &yi) in x.iter().zip(y) {
        let w = weight(xi, yi).max(0.0).sqrt();
        rows.push((0..=degree).map(|p| w * xi.powi(p as i32)).collect());
        ys.push(w * yi);
    }
    least_squares(&rows, &ys)
}

/// Fits `y = a·ln(x) + b`. Returns `(a, b)`, or `None` for degenerate
/// input (fewer than 2 points or non-positive x).
pub fn logfit(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
    if x.len() != y.len() || x.len() < 2 || x.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let rows: Vec<Vec<f64>> = x.iter().map(|&xi| vec![xi.ln(), 1.0]).collect();
    let beta = least_squares(&rows, y)?;
    Some((beta[0], beta[1]))
}

/// Fits the exponential decay `y = A·e^(−λx) + C` by scanning λ and
/// solving (A, C) linearly at each candidate — robust and derivative-free.
/// Returns `(A, lambda, C)`.
pub fn expfit(x: &[f64], y: &[f64]) -> Option<(f64, f64, f64)> {
    if x.len() != y.len() || x.len() < 3 {
        return None;
    }
    let x_span = x.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - x.iter().copied().fold(f64::INFINITY, f64::min);
    if x_span <= 0.0 {
        return None;
    }
    let mut best: Option<(f64, (f64, f64, f64))> = None;
    // λ spans decay lengths from ~100× the x range down to ~1/100th.
    for i in 0..240 {
        let lambda = (10.0f64.powf(-2.0 + 4.0 * i as f64 / 239.0)) / x_span;
        let rows: Vec<Vec<f64>> = x
            .iter()
            .map(|&xi| vec![(-lambda * xi).exp(), 1.0])
            .collect();
        let Some(beta) = least_squares(&rows, y) else {
            continue;
        };
        let sse: f64 = rows
            .iter()
            .zip(y)
            .map(|(r, &yi)| (r[0] * beta[0] + beta[1] - yi).powi(2))
            .sum();
        if best.as_ref().is_none_or(|(e, _)| sse < *e) {
            best = Some((sse, (beta[0], lambda, beta[1])));
        }
    }
    best.map(|(_, p)| p)
}

/// A fitted piecewise model: constant `u` for `x ≤ v`, logarithmic
/// `w·ln(x) + z` beyond — the form of the paper's power models (Eqn. 4/6).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PiecewiseConstLog {
    /// Constant level in the low regime.
    pub u: f64,
    /// Transition point.
    pub v: f64,
    /// Log slope in the high regime.
    pub w: f64,
    /// Log intercept in the high regime.
    pub z: f64,
}

impl PiecewiseConstLog {
    /// Evaluates the model.
    pub fn predict(&self, x: f64) -> f64 {
        if x <= self.v {
            self.u
        } else {
            self.w * x.ln() + self.z
        }
    }
}

/// Fits [`PiecewiseConstLog`] by scanning candidate transitions over the
/// sample's x values; each side is fitted optimally (mean / log LSQ).
/// Needs ≥ 4 points; falls back to a pure log fit expressed with `v` below
/// the data range when that is better.
pub fn fit_const_log(x: &[f64], y: &[f64]) -> Option<PiecewiseConstLog> {
    if x.len() != y.len() || x.len() < 4 || x.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&i, &j| x[i].total_cmp(&x[j]));
    let xs: Vec<f64> = idx.iter().map(|&i| x[i]).collect();
    let ys: Vec<f64> = idx.iter().map(|&i| y[i]).collect();

    let mut best: Option<(f64, PiecewiseConstLog)> = None;
    // Split after k points (k = 0 means all-log).
    for k in 0..xs.len() - 2 {
        let (u, sse_lo) = if k == 0 {
            (f64::NAN, 0.0)
        } else {
            let m = ys[..k].iter().sum::<f64>() / k as f64;
            (m, ys[..k].iter().map(|&v| (v - m).powi(2)).sum())
        };
        let Some((w, z)) = logfit(&xs[k..], &ys[k..]) else {
            continue;
        };
        let sse_hi: f64 = xs[k..]
            .iter()
            .zip(&ys[k..])
            .map(|(&xi, &yi)| (w * xi.ln() + z - yi).powi(2))
            .sum();
        let v = if k == 0 {
            xs[0] * 0.5
        } else {
            0.5 * (xs[k - 1] + xs[k])
        };
        let u = if u.is_nan() { w * v.ln() + z } else { u };
        let sse = sse_lo + sse_hi;
        if best.as_ref().is_none_or(|(e, _)| sse < *e) {
            best = Some((sse, PiecewiseConstLog { u, v, w, z }));
        }
    }
    best.map(|(_, m)| m)
}

/// A fitted piecewise model: exponential decay for `x ≤ v`, logarithmic
/// growth beyond — the paper's energy-per-token form (Eqn. 5).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PiecewiseExpLog {
    /// Decay amplitude.
    pub a: f64,
    /// Decay rate.
    pub lambda: f64,
    /// Decay asymptote.
    pub c: f64,
    /// Transition point.
    pub v: f64,
    /// Log slope beyond the transition.
    pub alpha: f64,
    /// Log intercept beyond the transition.
    pub beta: f64,
}

impl PiecewiseExpLog {
    /// Evaluates the model.
    pub fn predict(&self, x: f64) -> f64 {
        if x <= self.v {
            self.a * (-self.lambda * x).exp() + self.c
        } else {
            self.alpha * x.ln() + self.beta
        }
    }
}

/// Fits [`PiecewiseExpLog`] by scanning transition candidates. Needs ≥ 7
/// points (≥ 4 below and ≥ 3 above the transition are fitted per side; if
/// no valid split exists the whole range is fitted as exponential decay
/// with the transition placed past the data).
pub fn fit_exp_log(x: &[f64], y: &[f64]) -> Option<PiecewiseExpLog> {
    if x.len() != y.len() || x.len() < 7 {
        return None;
    }
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&i, &j| x[i].total_cmp(&x[j]));
    let xs: Vec<f64> = idx.iter().map(|&i| x[i]).collect();
    let ys: Vec<f64> = idx.iter().map(|&i| y[i]).collect();

    let mut best: Option<(f64, PiecewiseExpLog)> = None;
    for k in 4..=xs.len() - 3 {
        let Some((a, lambda, c)) = expfit(&xs[..k], &ys[..k]) else {
            continue;
        };
        let Some((alpha, beta)) = logfit(&xs[k..], &ys[k..]) else {
            continue;
        };
        let v = 0.5 * (xs[k - 1] + xs[k]);
        let model = PiecewiseExpLog {
            a,
            lambda,
            c,
            v,
            alpha,
            beta,
        };
        let sse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(&xi, &yi)| (model.predict(xi) - yi).powi(2))
            .sum();
        if best.as_ref().is_none_or(|(e, _)| sse < *e) {
            best = Some((sse, model));
        }
    }
    // Whole-range exponential fallback.
    if let Some((a, lambda, c)) = expfit(&xs, &ys) {
        let v = xs[xs.len() - 1] * 2.0;
        let model = PiecewiseExpLog {
            a,
            lambda,
            c,
            v,
            alpha: 0.0,
            beta: c,
        };
        let sse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(&xi, &yi)| (model.predict(xi) - yi).powi(2))
            .sum();
        if best.as_ref().is_none_or(|(e, _)| sse < *e) {
            best = Some((sse, model));
        }
    }
    best.map(|(_, m)| m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_linear_2x2() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve_linear(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn polyfit_recovers_quadratic() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64 * 50.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3e-7 * x * x + 2e-4 * x + 0.1).collect();
        let c = polyfit(&xs, &ys, 2).unwrap();
        assert!((c[0] - 0.1).abs() < 1e-9);
        assert!((c[1] - 2e-4).abs() < 1e-12);
        assert!((c[2] - 3e-7).abs() < 1e-15);
    }

    #[test]
    fn polyfit_rejects_underdetermined() {
        assert!(polyfit(&[1.0, 2.0], &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn logfit_recovers_parameters() {
        let xs: Vec<f64> = (1..=50).map(|i| i as f64 * 20.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 4.5 * x.ln() - 2.0).collect();
        let (a, b) = logfit(&xs, &ys).unwrap();
        assert!((a - 4.5).abs() < 1e-9);
        assert!((b + 2.0).abs() < 1e-9);
    }

    #[test]
    fn expfit_recovers_decay() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 25.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 0.16 * (-0.03 * x).exp() + 0.005)
            .collect();
        let (a, lambda, c) = expfit(&xs, &ys).unwrap();
        assert!((a - 0.16).abs() < 0.02, "A={a}");
        assert!((lambda - 0.03).abs() < 0.005, "lambda={lambda}");
        assert!((c - 0.005).abs() < 0.002, "C={c}");
    }

    #[test]
    fn const_log_finds_transition() {
        let xs: Vec<f64> = (1..=60).map(|i| i as f64 * 50.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x <= 800.0 { 6.0 } else { 1.2 * x.ln() - 2.0 })
            .collect();
        let m = fit_const_log(&xs, &ys).unwrap();
        assert!((m.u - 6.0).abs() < 0.1, "u={}", m.u);
        assert!((m.v - 800.0).abs() < 120.0, "v={}", m.v);
        assert!((m.w - 1.2).abs() < 0.05, "w={}", m.w);
    }

    #[test]
    fn exp_log_fits_both_regimes() {
        let xs: Vec<f64> = (1..=50).map(|i| i as f64 * 40.0).collect();
        let true_model = |x: f64| {
            if x <= 640.0 {
                0.159 * (-0.0324f64 * x).exp() + 0.0055
            } else {
                0.0123 * x.ln() - 0.0735
            }
        };
        let ys: Vec<f64> = xs.iter().map(|&x| true_model(x)).collect();
        let m = fit_exp_log(&xs, &ys).unwrap();
        let mape: f64 = xs
            .iter()
            .map(|&x| ((m.predict(x) - true_model(x)) / true_model(x)).abs())
            .sum::<f64>()
            / xs.len() as f64;
        assert!(mape < 0.15, "piecewise exp/log MAPE {mape}");
    }

    #[test]
    fn least_squares_overdetermined() {
        // y = 2a + 3b with noise-free data.
        let rows = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ];
        let y = vec![2.0, 3.0, 5.0, 7.0];
        let beta = least_squares(&rows, &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-12);
        assert!((beta[1] - 3.0).abs() < 1e-12);
    }
}
