//! Heterogeneous CPU-offload what-if analysis (paper §V-E / §VI).
//!
//! The paper observes that during GPU decode the Orin's 12 Cortex-A78AE
//! cores sit ≤20 % utilized, and proposes offloading lightweight kernels —
//! tokenization, layer-norm, softmax, embedding lookups — to the host and
//! overlapping them with GPU matmuls (cheap on a shared-memory SoC). This
//! module bounds the achievable gain from the kernel-level breakdown.

use edgereasoning_kernels::arch::ModelArch;
use edgereasoning_kernels::dtype::Precision;
use edgereasoning_kernels::phases::decode_step_kernels;
use edgereasoning_soc::cpu::Cpu;
use edgereasoning_soc::gpu::{ExecCalib, Gpu};
use edgereasoning_soc::kernel::KernelClass;
use serde::{Deserialize, Serialize};

/// Outcome of the offload analysis for one decode step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadReport {
    /// Baseline GPU-only step latency, seconds.
    pub baseline_s: f64,
    /// GPU time of the offloadable (elementwise/reduction/memcopy)
    /// kernels, seconds.
    pub offloadable_gpu_s: f64,
    /// CPU time those kernels would take on the A78AE cluster, seconds.
    pub offloaded_cpu_s: f64,
    /// Step latency with perfect overlap of the offloaded work, seconds.
    pub overlapped_s: f64,
}

impl OffloadReport {
    /// Relative speedup from offloading (≥ 1 when profitable).
    pub fn speedup(&self) -> f64 {
        self.baseline_s / self.overlapped_s
    }

    /// Whether offloading helps at all (CPU keeps up with the overlap
    /// window).
    pub fn is_profitable(&self) -> bool {
        self.overlapped_s < self.baseline_s * 0.999
    }
}

/// Analyzes one decode step: moves every elementwise/reduction/embedding
/// kernel to the CPU and overlaps it with the GPU matmul stream. The
/// overlapped latency is `max(gpu_matmul_time, cpu_time)` — perfect
/// pipelining, i.e. an upper bound on the §VI opportunity.
pub fn analyze_decode_offload(
    gpu: &mut Gpu,
    cpu: &mut Cpu,
    arch: &ModelArch,
    prec: Precision,
    batch: usize,
    ctx: usize,
) -> OffloadReport {
    let kernels = decode_step_kernels(arch, prec, batch, ctx);
    let offloadable = |class: KernelClass| {
        matches!(
            class,
            KernelClass::Elementwise | KernelClass::Reduction | KernelClass::MemCopy
        )
    };

    let mut gpu_matmul_s = 0.0;
    let mut offloadable_gpu_s = 0.0;
    let mut offloaded_cpu_s = 0.0;
    for k in &kernels {
        let g = gpu.execute_calibrated(k, &ExecCalib::default());
        if offloadable(k.class) {
            offloadable_gpu_s += g.latency_s;
            offloaded_cpu_s += cpu.execute(k).latency_s;
        } else {
            gpu_matmul_s += g.latency_s;
        }
    }
    let baseline_s = gpu_matmul_s + offloadable_gpu_s;
    OffloadReport {
        baseline_s,
        offloadable_gpu_s,
        offloaded_cpu_s,
        overlapped_s: gpu_matmul_s.max(offloaded_cpu_s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgereasoning_kernels::arch::ModelId;
    use edgereasoning_soc::spec::{OrinSpec, PowerMode};

    fn rig() -> (Gpu, Cpu) {
        let soc = OrinSpec::agx_orin_64gb();
        (Gpu::new(soc.gpu, PowerMode::MaxN, 1), Cpu::new(soc.cpu, 1))
    }

    #[test]
    fn offload_gain_is_bounded_by_elementwise_share() {
        let (mut gpu, mut cpu) = rig();
        let arch = ModelId::Dsr1Llama8b.arch();
        let r = analyze_decode_offload(&mut gpu, &mut cpu, &arch, Precision::Fp16, 1, 512);
        assert!(r.baseline_s > 0.0);
        // Elementwise work is a few percent of a bandwidth-bound step.
        let share = r.offloadable_gpu_s / r.baseline_s;
        assert!((0.005..0.2).contains(&share), "share {share}");
        assert!(r.speedup() >= 1.0);
        assert!(r.speedup() < 1.25, "offload cannot beat the matmul floor");
    }

    #[test]
    fn report_is_internally_consistent() {
        let (mut gpu, mut cpu) = rig();
        let arch = ModelId::Dsr1Qwen1_5b.arch();
        let r = analyze_decode_offload(&mut gpu, &mut cpu, &arch, Precision::Fp16, 1, 256);
        assert!(r.overlapped_s <= r.baseline_s);
        assert!(r.overlapped_s >= r.baseline_s - r.offloadable_gpu_s - 1e-12);
    }

    #[test]
    fn batch_raises_cpu_side_cost() {
        let (mut gpu, mut cpu) = rig();
        let arch = ModelId::Dsr1Qwen1_5b.arch();
        let r1 = analyze_decode_offload(&mut gpu, &mut cpu, &arch, Precision::Fp16, 1, 512);
        let r32 = analyze_decode_offload(&mut gpu, &mut cpu, &arch, Precision::Fp16, 32, 512);
        assert!(r32.offloaded_cpu_s > r1.offloaded_cpu_s);
    }
}
