//! Speculative-decoding what-if analysis (paper §VI).
//!
//! The paper identifies speculative decoding as a way to raise the
//! arithmetic intensity of the bandwidth-bound decode phase: a small draft
//! model proposes `k` tokens which the target model verifies in one
//! batched forward pass. This module provides the standard analytical
//! model (Leviathan et al.) instantiated with the simulator's measured
//! step times, so the ablation bench can report expected speedups on the
//! Orin for every draft/target pairing.

use edgereasoning_kernels::arch::ModelId;
use serde::{Deserialize, Serialize};

/// Parameters of a speculative-decoding deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeculativeConfig {
    /// Draft model proposing tokens.
    pub draft: ModelId,
    /// Target model verifying them.
    pub target: ModelId,
    /// Tokens drafted per verification step.
    pub draft_len: usize,
    /// Probability the target accepts one drafted token (token-level
    /// agreement; ≈0.6–0.9 for same-family pairs in practice).
    pub acceptance: f64,
}

impl SpeculativeConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `draft_len == 0` or `acceptance` is outside `(0, 1]`.
    pub fn new(draft: ModelId, target: ModelId, draft_len: usize, acceptance: f64) -> Self {
        assert!(draft_len > 0, "draft_len must be positive");
        assert!(
            acceptance > 0.0 && acceptance <= 1.0,
            "acceptance must be in (0, 1]"
        );
        Self {
            draft,
            target,
            draft_len,
            acceptance,
        }
    }

    /// Expected tokens emitted per verification cycle: the standard
    /// geometric-acceptance result `(1 − α^(k+1)) / (1 − α)` (Leviathan et
    /// al.), counting the bonus token the verifier always contributes.
    pub fn expected_tokens_per_cycle(&self) -> f64 {
        let a = self.acceptance;
        let k = self.draft_len as f64;
        if (a - 1.0).abs() < 1e-12 {
            k + 1.0
        } else {
            (1.0 - a.powf(k + 1.0)) / (1.0 - a)
        }
    }

    /// Expected wall-clock speedup over plain autoregressive decoding,
    /// given the measured per-step times of the two models.
    ///
    /// `verify_overhead` is the relative extra cost of the target's
    /// (k+1)-token verification step versus its 1-token step. On the
    /// bandwidth-bound Orin this is small — the weights are read either
    /// way — which is exactly why the paper flags speculation as
    /// promising there.
    pub fn speedup(&self, draft_step_s: f64, target_step_s: f64, verify_overhead: f64) -> f64 {
        assert!(
            draft_step_s > 0.0 && target_step_s > 0.0,
            "step times must be positive"
        );
        let cycle_s =
            self.draft_len as f64 * draft_step_s + target_step_s * (1.0 + verify_overhead);
        let tokens = self.expected_tokens_per_cycle();
        (tokens * target_step_s) / cycle_s
    }

    /// The draft length maximizing speedup for the given step times,
    /// scanned over `1..=max_k`.
    pub fn best_draft_len(
        &self,
        draft_step_s: f64,
        target_step_s: f64,
        verify_overhead: f64,
        max_k: usize,
    ) -> (usize, f64) {
        (1..=max_k.max(1))
            .map(|k| {
                let cfg = Self {
                    draft_len: k,
                    ..*self
                };
                (k, cfg.speedup(draft_step_s, target_step_s, verify_overhead))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            // `1..=max_k.max(1)` always yields at least k = 1, so the
            // fallback is unreachable; it exists to keep this path
            // panic-free under the crate-wide expect/unwrap deny.
            .unwrap_or((1, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(k: usize, a: f64) -> SpeculativeConfig {
        SpeculativeConfig::new(ModelId::Dsr1Qwen1_5b, ModelId::Dsr1Qwen14b, k, a)
    }

    #[test]
    fn expected_tokens_formula() {
        // α = 0.5, k = 2: (1 - 0.125) / 0.5 = 1.75.
        assert!((cfg(2, 0.5).expected_tokens_per_cycle() - 1.75).abs() < 1e-12);
        // Perfect acceptance: k + 1 tokens.
        assert!((cfg(4, 1.0).expected_tokens_per_cycle() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_exceeds_one_for_fast_draft_and_high_acceptance() {
        // 1.5B draft (24 ms) for 14B target (187 ms) at 80% acceptance.
        let s = cfg(4, 0.8).speedup(0.024, 0.187, 0.05);
        assert!(s > 1.5, "expected solid speedup, got {s}");
    }

    #[test]
    fn speedup_collapses_with_slow_draft() {
        // Draft as slow as the target never helps.
        let s = cfg(4, 0.8).speedup(0.187, 0.187, 0.05);
        assert!(s < 1.0, "slow draft must lose, got {s}");
    }

    #[test]
    fn low_acceptance_hurts() {
        let high = cfg(4, 0.9).speedup(0.024, 0.187, 0.05);
        let low = cfg(4, 0.3).speedup(0.024, 0.187, 0.05);
        assert!(high > low);
    }

    #[test]
    fn best_draft_len_is_interior_for_moderate_acceptance() {
        let (k, s) = cfg(1, 0.7).best_draft_len(0.024, 0.187, 0.05, 16);
        assert!((2..=10).contains(&k), "optimal k should be moderate: {k}");
        assert!(s > 1.0);
    }

    #[test]
    #[should_panic(expected = "acceptance")]
    fn invalid_acceptance_panics() {
        let _ = SpeculativeConfig::new(ModelId::Dsr1Qwen1_5b, ModelId::Dsr1Qwen14b, 4, 1.5);
    }
}
